package regress

import (
	"bytes"
	"testing"

	"predictddl/internal/tensor"
)

// FuzzLoadRegressor drives arbitrary bytes through the model decoder: Load
// must either return a usable model or an error — never panic — and any
// model it does return must survive Predict at arbitrary widths. Seeded
// with a valid save of every serializable kind so mutations explore the
// envelope and snapshot space instead of only rejecting garbage prefixes.
func FuzzLoadRegressor(f *testing.F) {
	rng := tensor.NewRNG(1)
	x, y := synthData(rng, 30, 3, 0.05, func(v []float64) float64 { return 10 + v[0] })
	xa, ya := contractData(FeatureAnalytic, 2, 20)
	seeds := []struct {
		m  Regressor
		x  *tensor.Matrix
		y  []float64
		ok bool
	}{
		{NewLinearRegression(), x, y, true},
		{NewPolynomialRegression(2), x, y, true},
		{NewKNN(1), x, y, true},
		{NewGradientBoostedStumps(1), x, y, true},
		{NewRoofline(), xa, ya, true},
		{NewLogTarget(NewKNN(1)), x, y, true},
		{NewLinearRegression(), nil, nil, false}, // unfitted is saveable too
	}
	for _, s := range seeds {
		if s.ok {
			if err := s.m.Fit(s.x, s.y); err != nil {
				f.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := Save(&buf, s.m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("garbage"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return // keep gob's pre-validation allocations bounded
		}
		m, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, w := range []int{0, 1, 3, 13} {
			if _, err := m.Predict(make([]float64, w)); err != nil {
				continue // errors are fine; panics are the bug
			}
		}
	})
}
