package regress

import (
	"fmt"
	"math"

	"predictddl/internal/simulator"
	"predictddl/internal/tensor"
)

// RooflineRegressor is the analytical "you must beat this" floor of the
// backend leaderboard. It learns nothing from feature geometry: each
// prediction is reconstructed from the simulator's own per-iteration
// compute/communication/overhead cost functions applied to the analytic
// feature schema (simulator.AnalyticFeatures), times a single calibration
// scale fitted as the geometric mean of target/estimate ratios. The scale
// absorbs the per-corpus constants the features cannot see (epochs, dataset
// size, per-server batch); everything the roofline deliberately ignores —
// operation mix, input-pipeline stalls, graph-shape efficiency effects — is
// exactly the signal a learned backend must exploit to beat it.
type RooflineRegressor struct {
	// Opts tunes the underlying cost model; the zero value takes the
	// simulator's calibrated defaults.
	Opts simulator.Options

	scale        float64
	featureCount int
}

// NewRoofline returns a roofline baseline over the simulator's default cost
// model.
func NewRoofline() *RooflineRegressor { return &RooflineRegressor{} }

// Name implements Regressor.
func (m *RooflineRegressor) Name() string { return "roofline" }

// Scale reports the fitted calibration factor (0 before Fit).
func (m *RooflineRegressor) Scale() float64 { return m.scale }

// analyticIdx caches the schema positions the roofline reads. Resolved by
// name once so a schema reordering cannot silently misroute a feature.
var analyticIdx = struct {
	flops, params, nodes, servers, minGFLOPS, gpus, nic int
}{
	flops:     simulator.AnalyticIndex("flops"),
	params:    simulator.AnalyticIndex("params"),
	nodes:     simulator.AnalyticIndex("num_nodes"),
	servers:   simulator.AnalyticIndex("num_servers"),
	minGFLOPS: simulator.AnalyticIndex("min_server_gflops"),
	gpus:      simulator.AnalyticIndex("num_gpus"),
	nic:       simulator.AnalyticIndex("min_nic_gbps"),
}

// rawEstimate reconstructs per-server step time from one analytic feature
// row: slowest-server compute at the simulator's base efficiency, plus the
// exposed ring all-reduce and per-iteration overhead, divided by the server
// count (iteration count per epoch shrinks linearly with data parallelism;
// the dataset-size constant lands in the fitted scale).
func (m *RooflineRegressor) rawEstimate(f []float64) (float64, error) {
	servers := int(f[analyticIdx.servers])
	if servers < 1 {
		return 0, fmt.Errorf("regress: roofline needs ≥ 1 server, got %g", f[analyticIdx.servers])
	}
	minGF := f[analyticIdx.minGFLOPS]
	if minGF <= 0 {
		return 0, fmt.Errorf("regress: roofline needs positive min_server_gflops, got %g", minGF)
	}
	stepFLOPs := 3 * f[analyticIdx.flops] * simulator.DefaultBatchPerServer
	eff := simulator.BaseEfficiency(f[analyticIdx.gpus] > 0)
	compute := stepFLOPs / (minGF * 1e9 * eff)
	comm := m.Opts.CommPerIteration(compute, servers, 4*f[analyticIdx.params], f[analyticIdx.nic])
	overhead := m.Opts.OverheadPerIteration(int(f[analyticIdx.nodes]), servers)
	return (compute + comm + overhead) / float64(servers), nil
}

// Fit implements Regressor. x must use the analytic feature schema
// (simulator.AnalyticFeatures order); targets must be positive.
func (m *RooflineRegressor) Fit(x *tensor.Matrix, y []float64) error {
	if err := checkTrainingData(x, y); err != nil {
		return err
	}
	if x.Cols() != simulator.NumAnalyticFeatures() {
		return fmt.Errorf("regress: roofline needs the %d-wide analytic feature schema, got %d columns", simulator.NumAnalyticFeatures(), x.Cols())
	}
	var logSum float64
	for i := 0; i < x.Rows(); i++ {
		if y[i] <= 0 {
			return fmt.Errorf("regress: roofline needs positive targets, got %g at row %d", y[i], i)
		}
		raw, err := m.rawEstimate(x.Row(i))
		if err != nil {
			return fmt.Errorf("regress: roofline row %d: %w", i, err)
		}
		if raw <= 0 {
			return fmt.Errorf("regress: roofline row %d: non-positive cost estimate %g", i, raw)
		}
		logSum += math.Log(y[i] / raw)
	}
	m.scale = math.Exp(logSum / float64(x.Rows()))
	m.featureCount = x.Cols()
	return nil
}

// Predict implements Regressor.
func (m *RooflineRegressor) Predict(features []float64) (float64, error) {
	if m.featureCount == 0 {
		return 0, ErrNotFitted
	}
	if len(features) != m.featureCount {
		return 0, fmt.Errorf("regress: roofline fitted on %d features, got %d", m.featureCount, len(features))
	}
	raw, err := m.rawEstimate(features)
	if err != nil {
		return 0, err
	}
	return m.scale * raw, nil
}
