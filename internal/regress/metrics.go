package regress

import (
	"fmt"
	"math"
)

// RMSE returns the root-mean-square error between predictions and targets —
// the metric of the paper's Fig. 1–2 motivation study.
func RMSE(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	var s float64
	for i, p := range pred {
		d := p - actual[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAE returns the mean absolute error.
func MAE(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	var s float64
	for i, p := range pred {
		s += math.Abs(p - actual[i])
	}
	return s / float64(len(pred))
}

// RelativeRatio returns mean(predicted/actual), the paper's headline
// presentation ("closer to 1 is better", Fig. 6/9–12). Targets must be
// positive.
func RelativeRatio(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	var s float64
	for i, p := range pred {
		s += p / actual[i]
	}
	return s / float64(len(pred))
}

// MeanRelativeError returns mean(|predicted − actual| / actual), the "8%
// average relative error" metric of §IV. Targets must be positive.
func MeanRelativeError(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	var s float64
	for i, p := range pred {
		s += math.Abs(p-actual[i]) / actual[i]
	}
	return s / float64(len(pred))
}

// MaxRelativeError returns max(|predicted − actual| / actual).
func MaxRelativeError(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	var m float64
	for i, p := range pred {
		if r := math.Abs(p-actual[i]) / actual[i]; r > m {
			m = r
		}
	}
	return m
}

// MAPE returns the mean absolute percentage error,
// mean(|predicted − actual| / actual) — the leaderboard's ranking metric.
// Unlike MeanRelativeError it refuses non-positive targets instead of
// silently producing ±Inf or NaN, so a bad fold surfaces as a diagnosable
// error rather than a poisoned score.
func MAPE(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) || len(pred) == 0 {
		return 0, fmt.Errorf("regress: MAPE over mismatched slices %d vs %d", len(pred), len(actual))
	}
	var s float64
	for i, p := range pred {
		if actual[i] <= 0 {
			return 0, fmt.Errorf("regress: MAPE needs positive targets, got %g at index %d", actual[i], i)
		}
		s += math.Abs(p-actual[i]) / actual[i]
	}
	return s / float64(len(pred)), nil
}

// R2 returns the coefficient of determination.
func R2(pred, actual []float64) float64 {
	mustSameLen(pred, actual)
	var mean float64
	for _, a := range actual {
		mean += a
	}
	mean /= float64(len(actual))
	var ssRes, ssTot float64
	for i, p := range pred {
		ssRes += (actual[i] - p) * (actual[i] - p)
		ssTot += (actual[i] - mean) * (actual[i] - mean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

func mustSameLen(pred, actual []float64) {
	if len(pred) != len(actual) || len(pred) == 0 {
		panic(fmt.Sprintf("regress: metric over mismatched slices %d vs %d", len(pred), len(actual)))
	}
}
