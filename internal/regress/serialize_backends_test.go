package regress

import (
	"bytes"
	"encoding/gob"
	"testing"

	"predictddl/internal/tensor"
)

// Round-trip and corrupt-blob coverage for the leaderboard backends added to
// the serializer: kNN, gradient-boosted stumps, and the roofline baseline,
// plus their LogTarget wrappers (the form the registry actually serves).

func fittedKNN(t *testing.T) (*KNNRegressor, *tensor.Matrix) {
	t.Helper()
	rng := tensor.NewRNG(21)
	x, y := synthData(rng, 50, 4, 0.05, func(v []float64) float64 { return 10 + v[0] + v[1] })
	m := NewKNN(1)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	return m, x
}

func TestKNNRoundTrip(t *testing.T) {
	m, x := fittedKNN(t)
	back := roundTrip(t, m)
	if back.Name() != "knn" {
		t.Fatalf("name = %q", back.Name())
	}
	if got := back.(*KNNRegressor); got.ChosenK() != m.ChosenK() || got.LocalLinear != m.LocalLinear {
		t.Fatalf("loaded knn k=%d local=%v, want k=%d local=%v", got.ChosenK(), got.LocalLinear, m.ChosenK(), m.LocalLinear)
	}
	assertSamePredictions(t, m, back, x)
}

func TestKNNSaveRefusesUnfitted(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, NewKNN(1)); err == nil {
		t.Fatal("unfitted knn serialized (there is no training set to persist)")
	}
}

func TestGBStumpsRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(22)
	x, y := synthData(rng, 60, 3, 0.1, func(v []float64) float64 { return 10 + 2*v[0] - v[2] })
	m := NewGradientBoostedStumps(1)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, m)
	if got := back.(*GradientBoostedStumps); got.NumStumps() != m.NumStumps() {
		t.Fatalf("loaded %d stumps, want %d", got.NumStumps(), m.NumStumps())
	}
	assertSamePredictions(t, m, back, x)
}

func TestRooflineRoundTrip(t *testing.T) {
	x, y := contractData(FeatureAnalytic, 23, 25)
	m := NewRoofline()
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, m)
	if got := back.(*RooflineRegressor); got.Scale() != m.Scale() {
		t.Fatalf("scale %v != %v after round trip", got.Scale(), m.Scale())
	}
	assertSamePredictions(t, m, back, x)
}

func TestLogWrappedBackendRoundTrips(t *testing.T) {
	rng := tensor.NewRNG(24)
	x, y := synthData(rng, 50, 3, 0.05, func(v []float64) float64 { return 10 + v[0] })
	for _, mk := range []func() Regressor{
		func() Regressor { return NewLogTarget(NewKNN(1)) },
		func() Regressor { return NewLogTarget(NewGradientBoostedStumps(1)) },
	} {
		m := mk()
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		back := roundTrip(t, m)
		if back.Name() != m.Name() {
			t.Fatalf("name %q != %q", back.Name(), m.Name())
		}
		assertSamePredictions(t, m, back, x)
	}
}

// corruptEnvelope encodes a snapshot under the given kind tag, simulating an
// on-disk blob whose payload no longer satisfies the model's invariants.
func corruptEnvelope(t *testing.T, kind string, snapshot any) []byte {
	t.Helper()
	blob, err := encodeBlob(snapshot)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&envelope{Kind: kind, Blob: blob}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsCorruptSnapshots(t *testing.T) {
	cases := []struct {
		name     string
		kind     string
		snapshot any
	}{
		{"knn dimension mismatch", kindKNN, knnSnapshot{
			ChosenK: 1, Rows: 3, Cols: 2, X: []float64{1, 2, 3}, Y: []float64{1, 2, 3},
			Scaler: &scalerSnapshot{Mean: []float64{0, 0}, Std: []float64{1, 1}},
		}},
		{"knn chosen k out of range", kindKNN, knnSnapshot{
			ChosenK: 9, Rows: 2, Cols: 1, X: []float64{1, 2}, Y: []float64{1, 2},
			Scaler: &scalerSnapshot{Mean: []float64{0}, Std: []float64{1}},
		}},
		{"knn scaler width mismatch", kindKNN, knnSnapshot{
			ChosenK: 1, Rows: 2, Cols: 2, X: []float64{1, 2, 3, 4}, Y: []float64{1, 2},
			Scaler: &scalerSnapshot{Mean: []float64{0}, Std: []float64{1}},
		}},
		{"gb stump splits ghost feature", kindGBStumps, gbSnapshot{
			FeatureCount: 2, Stumps: []stump{{Feature: 5, Threshold: 1}},
		}},
		{"gb zero features", kindGBStumps, gbSnapshot{FeatureCount: 0}},
		{"roofline wrong schema width", kindRoofline, rooflineSnapshot{Scale: 1, FeatureCount: 3}},
		{"roofline non-positive scale", kindRoofline, rooflineSnapshot{Scale: 0, FeatureCount: 13}},
		{"unknown kind", "warp-drive", struct{}{}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			data := corruptEnvelope(t, c.kind, c.snapshot)
			if _, err := Load(bytes.NewReader(data)); err == nil {
				t.Fatal("corrupt snapshot loaded without error")
			}
		})
	}
}
