package regress

import (
	"math"
	"strings"
	"testing"

	"predictddl/internal/tensor"
)

// Regression tests for the k-fold edge cases that used to surface as NaN
// MAPE deep inside a leaderboard run instead of a diagnosable error.

func newLinearFactory() Regressor { return NewLinearRegression() }

func TestCrossValidateScoresHappyPath(t *testing.T) {
	rng := tensor.NewRNG(1)
	x, y := synthData(rng, 50, 3, 0.05, func(v []float64) float64 { return 10 + v[0] - v[2] })
	scores, err := CrossValidateScores(newLinearFactory, x, y, 5, tensor.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 5 {
		t.Fatalf("got %d fold scores, want 5", len(scores))
	}
	for i, s := range scores {
		if math.IsNaN(s.MAPE) || math.IsNaN(s.RMSE) || s.MAPE < 0 || s.RMSE < 0 {
			t.Fatalf("fold %d score %+v is not a sane error value", i, s)
		}
		if s.MAPE > 0.2 {
			t.Fatalf("fold %d MAPE %v way off on near-linear data", i, s.MAPE)
		}
	}
}

func TestCrossValidateScoresFewerRowsThanFolds(t *testing.T) {
	x, _ := tensor.NewMatrixFrom(3, 1, []float64{1, 2, 3})
	_, err := CrossValidateScores(newLinearFactory, x, []float64{1, 2, 3}, 5, tensor.NewRNG(1))
	if err == nil {
		t.Fatal("3 rows accepted for 5 folds")
	}
	if !strings.Contains(err.Error(), "2 ≤ k ≤ n") {
		t.Fatalf("error %q does not explain the fold bound", err)
	}
}

func TestCrossValidateScoresNonPositiveTargets(t *testing.T) {
	rng := tensor.NewRNG(1)
	x, y := synthData(rng, 20, 2, 0.05, func(v []float64) float64 { return 10 + v[0] })
	y[7] = 0
	_, err := CrossValidateScores(newLinearFactory, x, y, 4, tensor.NewRNG(1))
	if err == nil {
		t.Fatal("zero target accepted")
	}
	if !strings.Contains(err.Error(), "positive targets") || !strings.Contains(err.Error(), "target 7") {
		t.Fatalf("error %q does not name the offending target", err)
	}
}

func TestCrossValidateScoresConstantTargetFolds(t *testing.T) {
	x := tensor.NewMatrix(12, 2)
	rng := tensor.NewRNG(3)
	for i := 0; i < x.Rows(); i++ {
		rng.FillUniform(x.Row(i), -1, 1)
	}
	y := make([]float64, 12)
	for i := range y {
		y[i] = 4.5
	}
	_, err := CrossValidateScores(newLinearFactory, x, y, 3, tensor.NewRNG(1))
	if err == nil {
		t.Fatal("constant targets accepted")
	}
	if !strings.Contains(err.Error(), "constant-target folds are untrainable") {
		t.Fatalf("error %q does not diagnose the constant fold", err)
	}
}

func TestMAPEEdgeCases(t *testing.T) {
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Fatal("empty slices accepted")
	}
	if _, err := MAPE([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero actual accepted (division by zero)")
	}
	got, err := MAPE([]float64{90, 110}, []float64{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE = %v, want 0.1", got)
	}
}
