package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the dataflow half of the engine (DESIGN.md §11): a
// reaching-definitions analysis over the CFG in cfg.go. Definitions are
// collected per local object (params, named results, :=/=/op= targets,
// range variables, var decls), solved block-wise with the classic gen/kill
// worklist, and then replayed node-by-node so a client can ask "which
// definitions of x reach this use site". poolescape builds its escape
// lattice on top; the CFG alone carries the lock-state analysis in
// guardedby.

// Def is one definition site of a local object.
type Def struct {
	// Obj is the defined local (variable object from go/types).
	Obj types.Object
	// RHS is the defining expression when the definition has one
	// (x := e, x = e, x op= e). Nil for params, var decls without values,
	// and range variables.
	RHS ast.Expr
	// Node is the statement or CFG node the definition occurs in; params
	// and named results use the function body itself.
	Node ast.Node
	// id indexes the def in the function's def list.
	id int
}

// defSet is a sparse set of def ids.
type defSet map[int]struct{}

func (s defSet) clone() defSet {
	c := make(defSet, len(s))
	for k := range s {
		c[k] = struct{}{}
	}
	return c
}

func (s defSet) equal(o defSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// ReachingDefs is the solved analysis for one function.
type ReachingDefs struct {
	cfg  *CFG
	info *types.Info
	// Defs lists every definition, in collection order.
	Defs []*Def
	// byObj groups def ids per object, for kill sets.
	byObj map[types.Object][]int
	// in is each block's entry def set.
	in []defSet
}

// SolveReachingDefs collects the definitions of body (a function with the
// given parameter/result objects defined at entry) and solves the forward
// may-analysis over cfg.
func SolveReachingDefs(cfg *CFG, info *types.Info, body *ast.BlockStmt, entryObjs []types.Object) *ReachingDefs {
	r := &ReachingDefs{cfg: cfg, info: info, byObj: map[types.Object][]int{}}

	// Entry definitions: parameters, receivers, named results.
	entry := defSet{}
	for _, obj := range entryObjs {
		d := r.addDef(obj, nil, body)
		entry[d.id] = struct{}{}
	}
	// Walk every block collecting defs in node order; remember each node's
	// defs for the transfer function.
	defsAt := make(map[ast.Node][]*Def)
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			for _, d := range r.collectNodeDefs(n) {
				defsAt[n] = append(defsAt[n], d)
			}
		}
	}

	// Iterate to fixpoint. in[b] = union of out[pred]; out computed by
	// replaying the block's gen/kill.
	r.in = make([]defSet, len(cfg.Blocks))
	for i := range r.in {
		r.in[i] = defSet{}
	}
	r.in[cfg.Entry.Index] = entry
	out := make([]defSet, len(cfg.Blocks))
	transfer := func(blk *Block) defSet {
		cur := r.in[blk.Index].clone()
		for _, n := range blk.Nodes {
			for _, d := range defsAt[n] {
				r.apply(cur, d)
			}
		}
		return cur
	}
	work := []*Block{cfg.Entry}
	inWork := make([]bool, len(cfg.Blocks))
	inWork[cfg.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false
		o := transfer(blk)
		if out[blk.Index] != nil && o.equal(out[blk.Index]) {
			continue
		}
		out[blk.Index] = o
		for _, succ := range blk.Succs {
			changed := false
			for id := range o {
				if _, ok := r.in[succ.Index][id]; !ok {
					r.in[succ.Index][id] = struct{}{}
					changed = true
				}
			}
			if changed && !inWork[succ.Index] {
				inWork[succ.Index] = true
				work = append(work, succ)
			}
		}
	}
	return r
}

// apply updates cur with one definition: kill every other def of the same
// object, then gen d.
func (r *ReachingDefs) apply(cur defSet, d *Def) {
	for _, id := range r.byObj[d.Obj] {
		delete(cur, id)
	}
	cur[d.id] = struct{}{}
}

// Walk replays one block: fn is called for every node with the def set
// live at that node's entry. The set is mutated in place as defs apply;
// callers must not retain it across calls.
func (r *ReachingDefs) Walk(blk *Block, fn func(n ast.Node, live defSet)) {
	cur := r.in[blk.Index].clone()
	for _, n := range blk.Nodes {
		fn(n, cur)
		for _, d := range r.collectNodeDefs(n) {
			r.apply(cur, d)
		}
	}
}

// ReachingAt returns the defs of obj in live.
func (r *ReachingDefs) ReachingAt(obj types.Object, live defSet) []*Def {
	var out []*Def
	for _, id := range r.byObj[obj] {
		if _, ok := live[id]; ok {
			out = append(out, r.Defs[id])
		}
	}
	return out
}

// addDef registers a definition, deduplicating on (obj, node, rhs) so the
// collection pass and the replay pass agree on ids.
func (r *ReachingDefs) addDef(obj types.Object, rhs ast.Expr, node ast.Node) *Def {
	for _, id := range r.byObj[obj] {
		d := r.Defs[id]
		if d.Node == node && d.RHS == rhs {
			return d
		}
	}
	d := &Def{Obj: obj, RHS: rhs, Node: node, id: len(r.Defs)}
	r.Defs = append(r.Defs, d)
	r.byObj[obj] = append(r.byObj[obj], d.id)
	return d
}

// collectNodeDefs extracts the definitions a single CFG node performs.
// Nested function literals are opaque: their assignments run at call time
// and never redefine the enclosing function's view deterministically, so
// treating them as non-defs is the conservative (may-reach) choice.
func (r *ReachingDefs) collectNodeDefs(n ast.Node) []*Def {
	var defs []*Def
	def := func(id *ast.Ident, rhs ast.Expr, at ast.Node) {
		if id.Name == "_" {
			return
		}
		obj := r.info.Defs[id]
		if obj == nil {
			obj = r.info.Uses[id]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil {
			defs = append(defs, r.addDef(obj, rhs, at))
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				// Multi-value: x, y := f() — both defs carry the call.
				rhs = n.Rhs[0]
			}
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// x += e redefines x from both its old value and e; keep
				// the RHS so taint flows, the kill still applies.
				rhs = n.Rhs[0]
			}
			def(id, rhs, n)
		}
	case *ast.IncDecStmt:
		if id, ok := n.X.(*ast.Ident); ok {
			def(id, nil, n)
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			def(id, nil, n)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			def(id, nil, n)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 {
						rhs = vs.Values[0]
					}
					def(id, rhs, n)
				}
			}
		}
	}
	return defs
}
