package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerGoLeak flags goroutines that can outlive their function's
// cancellation signal. A function that takes a context.Context or a done
// channel (chan struct{} / <-chan struct{}) advertises that its work is
// cancelable; a goroutine it launches must therefore be tied to the
// function's lifetime in one of the sanctioned ways:
//
//   - it observes the cancellation parameter (selects on ctx.Done() / the
//     done channel, or passes the context along);
//   - it is joined by a sync.WaitGroup (the goroutine calls wg.Done, and
//     the waitgroup check already enforces the Add-before-go discipline);
//   - it is collected through a channel: the goroutine sends its result on
//     a channel the spawning function receives from (the
//     serve-error-channel pattern in core.Server.Serve).
//
// Anything else keeps running after cancellation with no way to stop it —
// the goroutine leak class the §8 shutdown hardening exists to prevent.
var AnalyzerGoLeak = &Analyzer{
	ID:       "goleak",
	Doc:      "goroutines in cancelable functions (ctx/done-channel params) must observe cancellation, be WaitGroup-joined, or be channel-collected",
	Severity: SevError,
	Run:      runGoLeak,
}

func runGoLeak(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cancelParams := cancellationParams(pass, fd.Type)
			if len(cancelParams) == 0 {
				continue
			}
			checkGoLeak(pass, fd.Body, cancelParams)
		}
	}
}

// cancellationParams returns the parameter objects that signal
// cancellation: context.Context values and struct{} channels.
func cancellationParams(pass *Pass, ftype *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ftype.Params == nil {
		return out
	}
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.Defs[name]
			if obj == nil {
				continue
			}
			if isContextType(obj.Type()) || isDoneChanType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func isDoneChanType(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() == types.SendOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// checkGoLeak inspects every go statement in body (including those inside
// nested literals — they inherit the enclosing cancellation contract).
func checkGoLeak(pass *Pass, body *ast.BlockStmt, cancelParams map[types.Object]bool) {
	// collected maps channel objects the function receives from; a
	// goroutine sending its result there is joined by collection.
	collected := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			if id, ok := unparen(u.X).(*ast.Ident); ok {
				if obj := objOf(pass, id); obj != nil {
					collected[obj] = true
				}
			}
		}
		if rng, ok := n.(*ast.RangeStmt); ok {
			if id, ok := unparen(rng.X).(*ast.Ident); ok {
				if tv, ok := pass.Info.Types[rng.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						if obj := objOf(pass, id); obj != nil {
							collected[obj] = true
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		gostmt, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goStmtJoined(pass, gostmt, cancelParams, collected) {
			return true
		}
		pass.Reportf(gostmt.Pos(), "goroutine in a cancelable function neither observes ctx/done, is WaitGroup-joined, nor is collected via a channel: it can outlive cancellation")
		return true
	})
}

// goStmtJoined decides whether one go statement is lifetime-bounded.
func goStmtJoined(pass *Pass, gostmt *ast.GoStmt, cancelParams map[types.Object]bool, collected map[types.Object]bool) bool {
	call := gostmt.Call
	// 1. The cancellation parameter is passed to the spawned function.
	for _, arg := range call.Args {
		if exprMentions(pass, arg, cancelParams) {
			return true
		}
	}
	lit, isLit := unparen(call.Fun).(*ast.FuncLit)
	if !isLit {
		// go method-value or named function without ctx args: nothing ties
		// it to this function's lifetime that we can see.
		return false
	}
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			// 2. The closure observes ctx / the done channel.
			if obj := pass.Info.Uses[n]; obj != nil && cancelParams[obj] {
				joined = true
			}
		case *ast.CallExpr:
			// 3. The closure signals a WaitGroup.
			if obj, ok := isSyncMethodCall(pass, n, "WaitGroup", "Done"); ok && obj != nil {
				joined = true
			}
		case *ast.SendStmt:
			// 4. The closure hands its result to a channel the spawning
			// function receives from.
			if id, ok := unparen(n.Chan).(*ast.Ident); ok {
				if obj := objOf(pass, id); obj != nil && collected[obj] {
					joined = true
				}
			}
		}
		return true
	})
	return joined
}

// exprMentions reports whether e references any of the given objects.
func exprMentions(pass *Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isSyncMethodCall reports whether call is recv.method() with recv of type
// sync.<typeName>, returning the receiver object when resolvable.
func isSyncMethodCall(pass *Pass, call *ast.CallExpr, typeName, method string) (types.Object, bool) {
	return isSyncMethod(pass, call, map[string]bool{typeName: true}, method)
}
