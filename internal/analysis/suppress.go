package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "//ddlvet:ignore"

// Ignore is one parsed //ddlvet:ignore directive. A single directive may
// suppress several checks on its line:
//
//	//ddlvet:ignore poolescape,guardedby reason...
type Ignore struct {
	Checks []string // check IDs being suppressed (at least one)
	Reason string   // mandatory human justification
}

// ParseIgnore parses the text of a single comment. ok reports whether the
// comment is a ddlvet directive at all; err is non-nil when it is a
// directive but malformed (unknown shape, missing check ID or reason,
// empty ID in a comma list). Check-ID existence is validated later, in
// collectSuppressions, where the registry is known.
func ParseIgnore(comment string) (ig Ignore, ok bool, err error) {
	if !strings.HasPrefix(comment, ignorePrefix) {
		return Ignore{}, false, nil
	}
	rest := comment[len(ignorePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //ddlvet:ignored — not our directive.
		return Ignore{}, false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Ignore{}, true, fmt.Errorf("ddlvet:ignore needs a check ID and a reason")
	}
	if len(fields) == 1 {
		return Ignore{}, true, fmt.Errorf("ddlvet:ignore %s needs a reason", fields[0])
	}
	ids := strings.Split(fields[0], ",")
	for _, id := range ids {
		if id == "" {
			return Ignore{}, true, fmt.Errorf("ddlvet:ignore %s has an empty check ID in its comma list", fields[0])
		}
	}
	return Ignore{Checks: ids, Reason: strings.Join(fields[1:], " ")}, true, nil
}

// knownCheckIDs is the set a directive may name: every registered check
// plus the "ignore" pseudo-check itself.
func knownCheckIDs() map[string]bool {
	known := map[string]bool{"ignore": true}
	for _, a := range Checks() {
		known[a.ID] = true
	}
	return known
}

// suppressions indexes a file's directives by line number.
type suppressions map[int][]Ignore

// collectSuppressions scans one file's comments. Malformed directives —
// bad shape, missing reason, or a check ID that no registered check owns —
// are reported as diagnostics under the pseudo-check "ignore" (error
// severity) so a typo never silently re-enables a finding.
func collectSuppressions(pkg *Package, f *ast.File, report func(Diagnostic)) suppressions {
	sup := suppressions{}
	known := knownCheckIDs()
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			ig, ok, err := ParseIgnore(c.Text)
			if !ok {
				continue
			}
			if err == nil {
				for _, id := range ig.Checks {
					if !known[id] {
						err = fmt.Errorf("ddlvet:ignore names unknown check %q (run `ddlvet -list` for valid IDs)", id)
						break
					}
				}
			}
			line := pkg.Fset.Position(c.Pos()).Line
			if err != nil {
				report(Diagnostic{
					Check:    "ignore",
					Severity: SevError,
					Position: pkg.Fset.Position(c.Pos()),
					Message:  err.Error(),
				})
				continue
			}
			sup[line] = append(sup[line], ig)
		}
	}
	return sup
}

// filterSuppressed drops diagnostics covered by a //ddlvet:ignore directive
// on the same line or the line directly above, and appends diagnostics for
// malformed directives.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	byFile := make(map[string]suppressions)
	var out []Diagnostic
	report := func(d Diagnostic) { out = append(out, d) }
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		byFile[name] = collectSuppressions(pkg, f, report)
	}
	for _, d := range diags {
		sup := byFile[d.Position.Filename]
		if sup.covers(d.Check, d.Position.Line) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (s suppressions) covers(check string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, ig := range s[l] {
			for _, id := range ig.Checks {
				if id == check {
					return true
				}
			}
		}
	}
	return false
}
