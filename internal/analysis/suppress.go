package analysis

import (
	"fmt"
	"go/ast"
	"strings"
)

// ignorePrefix introduces a suppression directive comment.
const ignorePrefix = "//ddlvet:ignore"

// Ignore is one parsed //ddlvet:ignore directive.
type Ignore struct {
	Check  string // check ID being suppressed
	Reason string // mandatory human justification
}

// ParseIgnore parses the text of a single comment. ok reports whether the
// comment is a ddlvet directive at all; err is non-nil when it is a
// directive but malformed (unknown shape, missing check ID or reason).
func ParseIgnore(comment string) (ig Ignore, ok bool, err error) {
	if !strings.HasPrefix(comment, ignorePrefix) {
		return Ignore{}, false, nil
	}
	rest := comment[len(ignorePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //ddlvet:ignored — not our directive.
		return Ignore{}, false, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return Ignore{}, true, fmt.Errorf("ddlvet:ignore needs a check ID and a reason")
	}
	if len(fields) == 1 {
		return Ignore{}, true, fmt.Errorf("ddlvet:ignore %s needs a reason", fields[0])
	}
	return Ignore{Check: fields[0], Reason: strings.Join(fields[1:], " ")}, true, nil
}

// suppressions indexes a file's directives by line number.
type suppressions map[int][]Ignore

// collectSuppressions scans one file's comments. Malformed directives are
// reported as diagnostics under the pseudo-check "ignore" (error severity)
// so a typo never silently re-enables a finding.
func collectSuppressions(pkg *Package, f *ast.File, report func(Diagnostic)) suppressions {
	sup := suppressions{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			ig, ok, err := ParseIgnore(c.Text)
			if !ok {
				continue
			}
			line := pkg.Fset.Position(c.Pos()).Line
			if err != nil {
				report(Diagnostic{
					Check:    "ignore",
					Severity: SevError,
					Position: pkg.Fset.Position(c.Pos()),
					Message:  err.Error(),
				})
				continue
			}
			sup[line] = append(sup[line], ig)
		}
	}
	return sup
}

// filterSuppressed drops diagnostics covered by a //ddlvet:ignore directive
// on the same line or the line directly above, and appends diagnostics for
// malformed directives.
func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	byFile := make(map[string]suppressions)
	var out []Diagnostic
	report := func(d Diagnostic) { out = append(out, d) }
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		byFile[name] = collectSuppressions(pkg, f, report)
	}
	for _, d := range diags {
		sup := byFile[d.Position.Filename]
		if sup.covers(d.Check, d.Position.Line) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func (s suppressions) covers(check string, line int) bool {
	for _, l := range []int{line, line - 1} {
		for _, ig := range s[l] {
			if ig.Check == check {
				return true
			}
		}
	}
	return false
}
