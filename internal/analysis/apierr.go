package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerAPIErr enforces error-context hygiene at the API surface of
// internal/core and internal/cluster: an exported function must not
// propagate an error obtained from *another package* bare. Callers of the
// serving layer see "ghn: load: unexpected EOF" and cannot tell which
// operation failed; wrapping with fmt.Errorf("core: <op>: %w", err) keeps
// the chain inspectable while adding the missing context.
var AnalyzerAPIErr = &Analyzer{
	ID:       "apierr",
	Doc:      "exported core/cluster functions must wrap cross-package errors with local context",
	Severity: SevWarning,
	Match:    apiPkg,
	Run:      runAPIErr,
}

func apiPkg(pkgPath string) bool {
	switch pkgPath[strings.LastIndex(pkgPath, "/")+1:] {
	case "core", "cluster":
		return true
	}
	return false
}

func runAPIErr(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkBareErrors(pass, fd)
		}
	}
}

// errWrappers build new errors with context and are exempt from the
// cross-package rule even though fmt/errors are other packages.
var errWrappers = map[string]map[string]bool{
	"fmt":    {"Errorf": true},
	"errors": {"New": true, "Join": true},
}

// checkBareErrors flags `return err` where err's latest assignment (in
// source order before the return) came from a call into another package.
// This is a lexical approximation of data flow, which matches the
// straight-line `x, err := pkg.F(); if err != nil { return err }` shape
// this codebase uses everywhere.
func checkBareErrors(pass *Pass, fd *ast.FuncDecl) {
	type lastAssign struct {
		pos     int // file offset of the assignment
		foreign string
	}
	assigns := map[types.Object][]lastAssign{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		foreign := foreignCallee(pass, call)
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" || !isErrorIdent(pass, id) {
				continue
			}
			obj := objOf(pass, id)
			if obj == nil {
				continue
			}
			assigns[obj] = append(assigns[obj], lastAssign{pos: int(assign.Pos()), foreign: foreign})
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			// return pkg.F(...) — the foreign error crosses the API
			// boundary with no local context at all.
			if call, ok := res.(*ast.CallExpr); ok {
				if foreign := foreignCallee(pass, call); foreign != "" && returnsError(pass, call) {
					pass.Reportf(ret.Pos(), "%s returns the error from %s bare; wrap it with local context (fmt.Errorf(%q, err))",
						fd.Name.Name, foreign, pass.Pkg.Name()+": <op>: %w")
				}
				continue
			}
			id, ok := res.(*ast.Ident)
			if !ok || !isErrorIdent(pass, id) {
				continue
			}
			obj := objOf(pass, id)
			if obj == nil {
				continue
			}
			latest := ""
			latestPos := -1
			for _, a := range assigns[obj] {
				if a.pos <= int(ret.Pos()) && a.pos > latestPos {
					latestPos, latest = a.pos, a.foreign
				}
			}
			if latest != "" {
				pass.Reportf(ret.Pos(), "%s returns the error from %s bare; wrap it with local context (fmt.Errorf(%q, err))",
					fd.Name.Name, latest, pass.Pkg.Name()+": <op>: %w")
			}
		}
		return true
	})
}

// foreignCallee returns a printable name when call targets a function or
// method defined in a different, non-wrapper package; "" otherwise.
func foreignCallee(pass *Pass, call *ast.CallExpr) string {
	var obj types.Object
	var label string
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fn.Sel]
		label = exprString(fn.X) + "." + fn.Sel.Name
	case *ast.Ident:
		obj = pass.Info.Uses[fn]
		label = fn.Name
	default:
		return ""
	}
	f, ok := obj.(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg() == pass.Pkg {
		return ""
	}
	if names := errWrappers[f.Pkg().Path()]; names != nil && names[f.Name()] {
		return ""
	}
	return label
}

// exprString renders simple receiver expressions for messages.
func exprString(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	default:
		return "expr"
	}
}

// returnsError reports whether the call's (possibly multi-value) result
// includes an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if tup.At(i).Type().String() == "error" {
				return true
			}
		}
		return false
	}
	return tv.Type.String() == "error"
}

// isErrorIdent resolves id through Defs/Uses (plain Info.Types misses the
// left side of := definitions) and reports whether it names an error.
func isErrorIdent(pass *Pass, id *ast.Ident) bool {
	obj := objOf(pass, id)
	return obj != nil && obj.Type() != nil && obj.Type().String() == "error"
}
