package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerGuardedBy machine-enforces the mutex-guarded-field discipline
// introduced when Controller.Collector raced (DESIGN.md §6): a struct field
// annotated
//
//	//ddlvet:guardedby <mutexField>
//
// (on the field's line, the line above, or its doc comment) may only be
// read while <mutexField> is held on the same receiver (RLock or Lock for
// a sync.RWMutex) and only written while it is held exclusively (Lock).
// Lock state is tracked path-sensitively along the CFG: `mu.Lock()` /
// `mu.RLock()` acquire, `mu.Unlock()` / `mu.RUnlock()` release,
// `defer mu.Unlock()` holds to function exit, and at join points a lock
// counts as held only if every incoming path holds it (held-intersection —
// the analysis never assumes a lock a path might not have taken).
//
// Two escape hatches keep the check aligned with the §6 conventions:
// methods whose name ends in "Locked" assume their receiver's mutexes are
// already held (the caller-holds convention: upsertLocked, syncLiveLocked),
// and accesses to a struct the function itself constructed (a composite
// literal bound to a local) are exempt — no other goroutine can see the
// value before it escapes the constructor.
var AnalyzerGuardedBy = &Analyzer{
	ID:       "guardedby",
	Doc:      "fields annotated //ddlvet:guardedby <mu> may only be accessed with the named mutex held on the same receiver",
	Severity: SevError,
	Run:      runGuardedBy,
}

// guardedbyPrefix introduces the field annotation.
const guardedbyPrefix = "//ddlvet:guardedby"

// guardInfo is one annotated field.
type guardInfo struct {
	mutex   string // name of the guarding mutex field
	rwmutex bool   // guard is a sync.RWMutex (reads may hold RLock)
}

// lockMode distinguishes shared from exclusive holds.
type lockMode int

const (
	lockShared    lockMode = 1 // RLock
	lockExclusive lockMode = 2 // Lock
)

// lockKey names one mutex instance: the base object the field is selected
// from plus the mutex field name. Accesses through distinct identifiers
// are distinct keys — the analysis never assumes two names alias.
type lockKey struct {
	base  types.Object
	field string
}

// lockFact maps held mutexes to their strongest guaranteed mode.
type lockFact map[lockKey]lockMode

func (f lockFact) clone() lockFact {
	c := make(lockFact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// meet intersects two facts, keeping the weaker mode where both hold.
func (f lockFact) meet(o lockFact) lockFact {
	out := lockFact{}
	for k, v := range f {
		if ov, ok := o[k]; ok {
			if ov < v {
				v = ov
			}
			out[k] = v
		}
	}
	return out
}

func (f lockFact) equal(o lockFact) bool {
	if len(f) != len(o) {
		return false
	}
	for k, v := range f {
		if ov, ok := o[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

func runGuardedBy(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkGuardedFunc(pass, guards, n.Body, lockedEntryFact(pass, n))
				}
			case *ast.FuncLit:
				// A closure starts with no locks provably held: it may run
				// on any goroutine at any time (deferred cleanup closures,
				// go statements, stored callbacks). Closures that need a
				// guarded field take the lock themselves.
				checkGuardedFunc(pass, guards, n.Body, lockFact{})
			}
			return true
		})
	}
}

// collectGuards parses //ddlvet:guardedby annotations on struct fields and
// validates each against the enclosing struct. Malformed annotations are
// reported (never silently dropped) under this check's own ID.
func collectGuards(pass *Pass) map[types.Object]guardInfo {
	guards := map[types.Object]guardInfo{}
	for _, f := range pass.Files {
		// Index every comment by line so annotations are found whether they
		// ride the field's line, the line above, or the doc group.
		byLine := map[int][]string{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := pass.Fset.Position(c.Pos()).Line
				byLine[line] = append(byLine[line], c.Text)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldLines := map[int]bool{}
			for _, field := range st.Fields.List {
				fieldLines[pass.Fset.Position(field.Pos()).Line] = true
			}
			for _, field := range st.Fields.List {
				mutexName, ok := guardAnnotation(pass, byLine, fieldLines, field)
				if !ok {
					continue
				}
				if mutexName == "" {
					pass.Reportf(field.Pos(), "ddlvet:guardedby needs the guarding mutex field name")
					continue
				}
				_, rw, found := findMutexField(pass, st, mutexName)
				if !found {
					pass.Reportf(field.Pos(), "ddlvet:guardedby %s: struct has no sync.Mutex/sync.RWMutex field named %q", mutexName, mutexName)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = guardInfo{mutex: mutexName, rwmutex: rw}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the directive covering field, if any. The
// line-above form only counts when that line holds no other field —
// otherwise a same-line annotation of the previous field would leak onto
// this one.
func guardAnnotation(pass *Pass, byLine map[int][]string, fieldLines map[int]bool, field *ast.Field) (mutex string, ok bool) {
	line := pass.Fset.Position(field.Pos()).Line
	var texts []string
	texts = append(texts, byLine[line]...)
	if !fieldLines[line-1] {
		texts = append(texts, byLine[line-1]...)
	}
	if field.Doc != nil {
		for _, c := range field.Doc.List {
			texts = append(texts, c.Text)
		}
	}
	for _, text := range texts {
		rest, found := strings.CutPrefix(text, guardedbyPrefix)
		if !found {
			continue
		}
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		// A trailing "// ..." inside the directive comment is commentary
		// (corpus want markers, end-of-line notes), not the mutex name.
		if i := strings.Index(rest, "//"); i >= 0 {
			rest = rest[:i]
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return "", true
		}
		return fields[0], true
	}
	return "", false
}

// findMutexField checks the struct declares mutexName as a sync mutex.
func findMutexField(pass *Pass, st *ast.StructType, mutexName string) (types.Object, bool, bool) {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != mutexName {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj == nil {
				return nil, false, false
			}
			t := obj.Type()
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
				switch named.Obj().Name() {
				case "Mutex":
					return obj, false, true
				case "RWMutex":
					return obj, true, true
				}
			}
			return nil, false, false
		}
	}
	return nil, false, false
}

// lockedEntryFact returns the entry fact for a declared function: methods
// named *Locked assume every sync mutex field of their receiver is held
// exclusively (the §6 caller-holds convention).
func lockedEntryFact(pass *Pass, fd *ast.FuncDecl) lockFact {
	fact := lockFact{}
	if !strings.HasSuffix(fd.Name.Name, "Locked") || fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fact
	}
	recv := fd.Recv.List[0]
	if len(recv.Names) == 0 {
		return fact
	}
	recvObj := pass.Info.Defs[recv.Names[0]]
	if recvObj == nil {
		return fact
	}
	t := recvObj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return fact
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if named, ok := f.Type().(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
			switch named.Obj().Name() {
			case "Mutex", "RWMutex":
				fact[lockKey{base: recvObj, field: f.Name()}] = lockExclusive
			}
		}
	}
	return fact
}

// checkGuardedFunc runs the lock-state analysis over one function body and
// reports unguarded accesses.
func checkGuardedFunc(pass *Pass, guards map[types.Object]guardInfo, body *ast.BlockStmt, entry lockFact) {
	// Fast pre-pass: skip functions that never touch a guarded field.
	touches := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if obj := selectedField(pass, sel); obj != nil {
				if _, guarded := guards[obj]; guarded {
					touches = true
				}
			}
		}
		return !touches
	})
	if !touches {
		return
	}

	cfg := BuildCFG(body)
	// Locally constructed structs are exempt: collect locals bound to a
	// composite literal anywhere in the function (flow-insensitive, which
	// is safe — the exemption is about values this function created).
	constructed := constructedLocals(pass, body)

	// Forward dataflow: in-fact per block, meet = held-intersection.
	in := make([]lockFact, len(cfg.Blocks))
	seen := make([]bool, len(cfg.Blocks))
	in[cfg.Entry.Index] = entry
	seen[cfg.Entry.Index] = true
	work := []*Block{cfg.Entry}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		out := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			applyLockOps(pass, n, out)
		}
		for _, succ := range blk.Succs {
			var next lockFact
			if !seen[succ.Index] {
				next = out.clone()
			} else {
				next = in[succ.Index].meet(out)
				if next.equal(in[succ.Index]) {
					continue
				}
			}
			in[succ.Index] = next
			seen[succ.Index] = true
			work = append(work, succ)
		}
	}

	// Report pass: replay each reachable block and check accesses.
	for _, blk := range cfg.Blocks {
		if !seen[blk.Index] {
			continue // unreachable
		}
		fact := in[blk.Index].clone()
		for _, n := range blk.Nodes {
			checkNodeAccesses(pass, guards, constructed, n, fact)
			applyLockOps(pass, n, fact)
		}
	}
}

// constructedLocals returns the local objects assigned a composite literal
// (&T{...} or T{...}) in this function — the constructor exemption.
func constructedLocals(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			rhs := unparen(assign.Rhs[i])
			if u, ok := rhs.(*ast.UnaryExpr); ok {
				rhs = unparen(u.X)
			}
			if _, ok := rhs.(*ast.CompositeLit); !ok {
				continue
			}
			if obj := objOf(pass, id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// applyLockOps updates fact with the lock and unlock calls inside node n
// (skipping nested function literals; a deferred unlock holds the lock to
// function exit, so deferred calls never release).
func applyLockOps(pass *Pass, n ast.Node, fact lockFact) {
	if _, ok := n.(*ast.DeferStmt); ok {
		return
	}
	// A RangeStmt surfaces as a loop-header node for def collection; its
	// body belongs to other blocks — process only the range operands here.
	if rng, ok := n.(*ast.RangeStmt); ok {
		for _, e := range []ast.Expr{rng.Key, rng.Value, rng.X} {
			if e != nil {
				applyLockOps(pass, e, fact)
			}
		}
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, method, ok := mutexCall(pass, call)
		if !ok {
			return true
		}
		switch method {
		case "Lock":
			fact[key] = lockExclusive
		case "RLock":
			if fact[key] < lockShared {
				fact[key] = lockShared
			}
		case "Unlock", "RUnlock":
			delete(fact, key)
		}
		return true
	})
}

// mutexCall decodes base.mu.Lock()-shaped calls: the receiver must be a
// sync.Mutex or sync.RWMutex field selected from a plain identifier.
func mutexCall(pass *Pass, call *ast.CallExpr) (lockKey, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	selection := pass.Info.Selections[sel]
	if selection == nil {
		return lockKey{}, "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return lockKey{}, "", false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return lockKey{}, "", false
	}
	// Shapes accepted: base.mu.Lock() and mu.Lock() on a plain local.
	switch x := unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		baseID, ok := unparen(x.X).(*ast.Ident)
		if !ok {
			return lockKey{}, "", false
		}
		base := objOf(pass, baseID)
		if base == nil {
			return lockKey{}, "", false
		}
		return lockKey{base: base, field: x.Sel.Name}, method, true
	case *ast.Ident:
		obj := objOf(pass, x)
		if obj == nil {
			return lockKey{}, "", false
		}
		return lockKey{base: obj, field: ""}, method, true
	}
	return lockKey{}, "", false
}

// checkNodeAccesses reports guarded-field accesses in n not covered by
// fact. Nested function literals are skipped (they are checked as their
// own scope).
func checkNodeAccesses(pass *Pass, guards map[types.Object]guardInfo, constructed map[types.Object]bool, n ast.Node, fact lockFact) {
	// writes collects the selector expressions appearing in a mutating
	// position within this node.
	writes := map[ast.Expr]bool{}
	markWrite := func(e ast.Expr) {
		e = unparen(e)
		// The mutated object for m[k]=v and *p=v is the map/pointer itself.
		if idx, ok := e.(*ast.IndexExpr); ok {
			e = unparen(idx.X)
		}
		if star, ok := e.(*ast.StarExpr); ok {
			e = unparen(star.X)
		}
		writes[e] = true
	}
	switch n := n.(type) {
	case *ast.RangeStmt:
		// Loop-header node: the body is checked in its own blocks. Only the
		// range operands evaluate here (`for k := range c.servers`), and the
		// key/value targets may be guarded fields (`for c.cursor = range x`).
		if n.Key != nil {
			markWrite(n.Key)
		}
		if n.Value != nil {
			markWrite(n.Value)
		}
		checkExprAccesses(pass, guards, constructed, n.X, writes, fact)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e != nil {
				checkExprAccesses(pass, guards, constructed, e, writes, fact)
			}
		}
		return
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			markWrite(lhs)
		}
	case *ast.IncDecStmt:
		markWrite(n.X)
	case *ast.DeferStmt:
		// The deferred call's arguments evaluate now; the call body runs at
		// exit under whatever locks remain — conservatively treat argument
		// evaluation as reads below and skip nothing else.
	}
	checkExprAccesses(pass, guards, constructed, n, writes, fact)
}

// checkExprAccesses walks one node (skipping nested literals) and reports
// guarded selector accesses not covered by fact. writes marks the selector
// expressions in mutating position.
func checkExprAccesses(pass *Pass, guards map[types.Object]guardInfo, constructed map[types.Object]bool, n ast.Node, writes map[ast.Expr]bool, fact lockFact) {
	markWrite := func(e ast.Expr) {
		e = unparen(e)
		if idx, ok := e.(*ast.IndexExpr); ok {
			e = unparen(idx.X)
		}
		if star, ok := e.(*ast.StarExpr); ok {
			e = unparen(star.X)
		}
		writes[e] = true
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// delete(m, k) and append-into mutate their first argument.
			if id, ok := unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := objOf(pass, id).(*types.Builtin); ok && (b.Name() == "delete" || b.Name() == "clear") {
					if len(x.Args) > 0 {
						markWrite(x.Args[0])
					}
				}
			}
			return true
		case *ast.UnaryExpr:
			// Taking the address of a guarded field leaks an unguarded
			// alias; require the write lock.
			if x.Op.String() == "&" {
				markWrite(x.X)
			}
			return true
		case *ast.SelectorExpr:
			obj := selectedField(pass, x)
			if obj == nil {
				return true
			}
			guard, guarded := guards[obj]
			if !guarded {
				return true
			}
			baseID, ok := unparen(x.X).(*ast.Ident)
			if !ok {
				pass.Reportf(x.Pos(), "guarded field %s accessed through a chained expression; ddlvet can only prove locking through a plain receiver", x.Sel.Name)
				return true
			}
			base := objOf(pass, baseID)
			if base == nil {
				return true
			}
			if constructed[base] {
				return true // this function built the value; not shared yet
			}
			mode := fact[lockKey{base: base, field: guard.mutex}]
			isWrite := writes[x]
			switch {
			case isWrite && mode < lockExclusive:
				pass.Reportf(x.Pos(), "write to %s.%s without holding %s.%s (guardedby contract)", baseID.Name, x.Sel.Name, baseID.Name, guard.mutex)
			case !isWrite && mode < lockShared:
				pass.Reportf(x.Pos(), "read of %s.%s without holding %s.%s (guardedby contract)", baseID.Name, x.Sel.Name, baseID.Name, guard.mutex)
			}
			return true
		}
		return true
	})
}

// selectedField resolves sel to the field object it selects, or nil when
// sel is not a field selection.
func selectedField(pass *Pass, sel *ast.SelectorExpr) types.Object {
	selection := pass.Info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	return selection.Obj()
}
