package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerTimeNow keeps wall-clock time and process-global randomness out
// of the deterministic packages (simulator, ghn, tensor): replayable
// simulations and bit-reproducible training must draw all entropy from an
// explicitly seeded source (tensor.RNG / rand.New(rand.NewSource(seed)))
// and take timestamps, if any, from an injected clock.
var AnalyzerTimeNow = &Analyzer{
	ID:       "timenow",
	Doc:      "deterministic packages must not call time.Now or the global math/rand functions",
	Severity: SevError,
	Match:    deterministicPkg,
	Run:      runTimeNow,
}

// deterministicPkg matches the packages whose outputs must be replayable.
func deterministicPkg(pkgPath string) bool {
	switch pkgPath[strings.LastIndex(pkgPath, "/")+1:] {
	case "simulator", "ghn", "tensor":
		return true
	}
	return false
}

// seededConstructors are the math/rand functions that build an explicitly
// seeded source; everything else package-level in math/rand draws from the
// process-global RNG.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runTimeNow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(id.Pos(), "time.Now in a deterministic package; inject a clock instead")
				}
			case "math/rand", "math/rand/v2":
				// Package-level functions only: methods on *rand.Rand have
				// a receiver and are the sanctioned seeded path.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !seededConstructors[fn.Name()] {
					pass.Reportf(id.Pos(), "global rand.%s in a deterministic package; use a seeded *rand.Rand (tensor.RNG)", fn.Name())
				}
			}
			return true
		})
	}
}
