package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerMapOrder keeps map iteration out of serialized output. Go
// randomizes map iteration order per run, so any bytes derived from a raw
// map range — CSV rows, JSON encodes, HTTP responses, fingerprint hashes —
// differ between identical runs. Three shapes are flagged:
//
//  1. a serialization sink called directly inside a map range;
//  2. map keys/values appended to a slice that reaches a sink in the same
//     function without an intervening sort of that slice;
//  3. the range key/value assigned to a variable declared outside the loop
//     (order-dependent selection, e.g. ties in an argmax resolve
//     differently run to run).
var AnalyzerMapOrder = &Analyzer{
	ID:       "maporder",
	Doc:      "map iteration feeding serialized output or order-dependent selection needs an intermediate sort",
	Severity: SevError,
	Run:      runMapOrder,
}

// sinkNameFragments identify calls that serialize or emit bytes.
var sinkNameFragments = []string{
	"print", "fprint", "write", "encode", "marshal", "json", "csv", "fingerprint", "hash",
}

func isSinkName(name string) bool {
	l := strings.ToLower(name)
	for _, frag := range sinkNameFragments {
		if strings.Contains(l, frag) {
			return true
		}
	}
	return false
}

// isSortCall matches sort.* / slices.Sort* and local helpers named *sort*.
// The package qualifier participates so sort.Strings / sort.Slice count.
func isSortCall(call *ast.CallExpr) bool {
	name := calleeName(call)
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			name = x.Name + "." + name
		}
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapOrder(pass, fd.Body)
		}
	}
}

func checkMapOrder(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(pass, rng.X) {
			return true
		}
		checkMapRange(pass, body, rng)
		return true
	})
}

func checkMapRange(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	// Objects bound by the range clause (key, value).
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(pass, id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	appendTargets := map[types.Object]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// Shape 1: sink called directly inside the range body.
			if isSinkName(calleeName(n)) {
				pass.Reportf(n.Pos(), "%s called while ranging over a map; iteration order is randomized — sort keys first", calleeName(n))
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rng, n, loopVars, appendTargets)
		}
		return true
	})
	// Shape 2 epilogue: appended slices must be sorted before any sink use
	// later in the function.
	for obj := range appendTargets {
		checkAppendedSlice(pass, fnBody, rng, obj)
	}
}

// checkMapRangeAssign handles shapes 2 and 3 for one assignment inside the
// range body.
func checkMapRangeAssign(pass *Pass, rng *ast.RangeStmt, assign *ast.AssignStmt, loopVars, appendTargets map[types.Object]bool) {
	if assign.Tok != token.ASSIGN {
		// := declares loop-local variables; compound float accumulation
		// (+= etc.) is floatorder's territory.
		return
	}
	declaredOutside := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rng.Pos() || obj.Pos() > rng.End())
	}
	for i, lhs := range assign.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := objOf(pass, id)
		if !declaredOutside(obj) {
			continue
		}
		if i >= len(assign.Rhs) {
			continue // x, y = f() multi-value: leave alone
		}
		rhs := assign.Rhs[i]
		// Shape 2: s = append(s, key/value/...)
		if call, ok := rhs.(*ast.CallExpr); ok && calleeName(call) == "append" {
			appendTargets[obj] = true
			continue
		}
		// Shape 3: outer variable receives the loop key/value directly.
		if usesAny(pass, rhs, loopVars) {
			pass.Reportf(assign.Pos(), "map iteration order selects the value of %s (e.g. tie-breaking); iterate sorted keys for a deterministic result", id.Name)
		}
	}
}

// usesAny reports whether expr mentions any of the given objects.
func usesAny(pass *Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkAppendedSlice flags obj when it flows into a sink call after the
// range without first passing through a sort. Flow is tracked one hop
// through assignments (e.g. resp := Response{Items: obj}) so wrapping the
// slice in a struct before encoding does not hide the order dependence.
func checkAppendedSlice(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) {
	tainted := map[types.Object]bool{obj: true}
	sorted := false
	var sinkPos ast.Node
	var sinkName string
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if n == nil || n.Pos() < rng.End() {
			return true
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if !usesAny(pass, rhs, tainted) {
					continue
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if o := objOf(pass, id); o != nil {
							tainted[o] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			mentions := false
			for _, arg := range n.Args {
				if usesAny(pass, arg, tainted) {
					mentions = true
					break
				}
			}
			if !mentions {
				return true
			}
			if isSortCall(n) {
				sorted = true
				return true
			}
			if !sorted && sinkPos == nil && isSinkName(calleeName(n)) {
				sinkPos, sinkName = n, calleeName(n)
			}
		}
		return true
	})
	if sinkPos != nil {
		pass.Reportf(sinkPos.Pos(), "slice %s was filled from a map range and reaches %s unsorted; sort it after the loop", obj.Name(), sinkName)
	}
}
