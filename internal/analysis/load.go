package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Path  string // import path within the module
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader discovers and type-checks the packages of a single module without
// go/packages: directories are walked with io/fs, file sets come from
// go/build (so build constraints are honored), and imports resolve through
// the stdlib "source" importer. One Loader shares a FileSet and importer
// across packages so stdlib dependencies are type-checked at most once.
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a fresh FileSet and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// buildContext is go/build with cgo disabled: ddlvet only needs the pure-Go
// view of each package, and type-checking cgo files from source is not
// supported by the source importer.
func buildContext() build.Context {
	ctx := build.Default
	ctx.CgoEnabled = false
	return ctx
}

// ModuleRoot walks up from dir to the enclosing go.mod.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: go.mod in %s has no module directive", root)
}

// packageDirs returns every directory under root that the go tool would
// consider part of the module: testdata, vendor, hidden, and underscore
// directories are skipped, as are nested modules.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadModule loads every buildable package under the module containing dir,
// in deterministic (lexical) order. Test files are excluded: ddlvet checks
// the invariants of production code, and tests legitimately use unordered
// maps, unseeded randomness, and deliberately broken fixtures.
func (l *Loader) LoadModule(dir string) ([]*Package, error) {
	root, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			return nil, err
		}
		path := mod
		if rel != "." {
			path = mod + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(d, path)
		if err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, giving it the
// provided import path. Returns *build.NoGoError when dir holds no
// buildable Go files.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	ctx := buildContext()
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}
