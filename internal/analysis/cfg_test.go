package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// parseFuncBody parses src (a complete file) and returns the body of the
// first function declaration.
func parseFuncBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// blockContaining returns the block holding a node for which match returns
// true, searching the nodes of every block.
func blockContaining(t *testing.T, cfg *CFG, match func(ast.Node) bool) *Block {
	t.Helper()
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if x != nil && match(x) {
					found = true
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	t.Fatal("no block contains the requested node")
	return nil
}

// reaches reports whether to is reachable from from along successor edges.
func reaches(from, to *Block) bool {
	seen := map[int]bool{}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b.Index] {
			continue
		}
		seen[b.Index] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

func isAssignTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) == 0 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

// TestCFGEarlyReturn: the return's block feeds Exit directly, and the code
// after the if is reachable only via the non-returning path.
func TestCFGEarlyReturn(t *testing.T) {
	body := parseFuncBody(t, `package p
func f(cond bool) int {
	before := 1
	if cond {
		early := 2
		return early
	}
	after := 3
	return after
}`)
	cfg := BuildCFG(body)
	// The early return is the one returning `early`.
	retBlk := blockContaining(t, cfg, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return false
		}
		id, ok := ret.Results[0].(*ast.Ident)
		return ok && id.Name == "early"
	})
	if len(retBlk.Succs) != 1 || retBlk.Succs[0] != cfg.Exit {
		t.Errorf("return block should feed Exit only, has %d succs", len(retBlk.Succs))
	}
	afterBlk := blockContaining(t, cfg, isAssignTo("after"))
	if reaches(retBlk, afterBlk) {
		t.Error("code after an early return must not be reachable from the return's block")
	}
	if !reaches(cfg.Entry, afterBlk) {
		t.Error("the non-returning path must reach the code after the if")
	}
	if !reaches(cfg.Entry, cfg.Exit) {
		t.Error("exit unreachable from entry")
	}
}

// TestCFGLabeledBreak: `break outer` from the inner loop must jump past
// BOTH loops — the outer header must not be reachable from the break block
// going forward, while the statement after the outer loop must be.
func TestCFGLabeledBreak(t *testing.T) {
	body := parseFuncBody(t, `package p
func f(n int) int {
	total := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i*j > 10 {
				break outer
			}
			inner := i * j
			total += inner
		}
		post := i
		total += post
	}
	done := total
	return done
}`)
	cfg := BuildCFG(body)
	breakBlk := blockContaining(t, cfg, func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.BREAK
	})
	// blockContaining can match the if-statement's block; walk to the block
	// whose own statement list holds the BranchStmt.
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.BREAK {
				breakBlk = blk
			}
		}
	}
	doneBlk := blockContaining(t, cfg, isAssignTo("done"))
	postBlk := blockContaining(t, cfg, isAssignTo("post"))
	if !reaches(breakBlk, doneBlk) {
		t.Error("break outer must reach the code after the outer loop")
	}
	if reaches(breakBlk, postBlk) {
		t.Error("break outer must not fall into the outer loop's trailing body")
	}
	if !reaches(cfg.Entry, postBlk) || !reaches(cfg.Entry, doneBlk) {
		t.Error("loop bodies and after-loop code must be reachable from entry")
	}
}

// TestCFGDeferInLoop: a defer inside a loop body sits on a cycle (the back
// edge), and the loop exit still reaches Exit.
func TestCFGDeferInLoop(t *testing.T) {
	body := parseFuncBody(t, `package p
func f(files []string) error {
	for _, name := range files {
		defer release(name)
		use := name
		_ = use
	}
	return nil
}
func release(string) {}`)
	cfg := BuildCFG(body)
	deferBlk := blockContaining(t, cfg, func(n ast.Node) bool {
		_, ok := n.(*ast.DeferStmt)
		return ok
	})
	// The defer's block must be inside the loop: some successor path leads
	// back to it (the range back edge).
	onCycle := false
	for _, succ := range deferBlk.Succs {
		if reaches(succ, deferBlk) {
			onCycle = true
		}
	}
	if !onCycle {
		t.Error("defer-in-loop block must sit on the loop's back-edge cycle")
	}
	if !reaches(deferBlk, cfg.Exit) {
		t.Error("loop must still reach Exit")
	}
}

// TestCFGReachingDefsThroughBranches: the reaching-definitions solver must
// merge both branch definitions at the join and kill the original.
func TestCFGReachingDefsThroughBranches(t *testing.T) {
	src := `package p
func f(cond bool) []int {
	x := []int{1}
	if cond {
		x = []int{2}
	} else {
		x = []int{3}
	}
	return x
}`
	// Reaching defs needs type info (Defs/Uses), so load through the corpus
	// loader rather than the bare parser.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "rd.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadDir(dir, "corpus/rd")
	if err != nil {
		t.Fatal(err)
	}
	var fd *ast.FuncDecl
	for _, file := range pkg.Files {
		for _, d := range file.Decls {
			if d, ok := d.(*ast.FuncDecl); ok && d.Name.Name == "f" {
				fd = d
			}
		}
	}
	if fd == nil {
		t.Fatal("f not found")
	}
	cfg := BuildCFG(fd.Body)
	rd := SolveReachingDefs(cfg, pkg.Info, fd.Body, nil)

	// Find the return block and the object for x.
	var retBlk *Block
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				retBlk = blk
			}
		}
	}
	if retBlk == nil {
		t.Fatal("no return block")
	}
	got := 0
	rd.Walk(retBlk, func(n ast.Node, live defSet) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		id := ret.Results[0].(*ast.Ident)
		obj := pkg.Info.Uses[id]
		got = len(rd.ReachingAt(obj, live))
	})
	if got != 2 {
		t.Errorf("defs of x reaching the return = %d, want 2 (one per branch; initial def killed on both paths)", got)
	}
}
