package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the control-flow half of the dataflow engine (DESIGN.md
// §11): a per-function CFG built directly from the AST, still stdlib-only.
// Blocks carry the simple statements and the control expressions
// (if/switch conditions, range operands) in execution order, so a forward
// analysis that walks Nodes sequentially sees every expression exactly
// when it evaluates. Nested function literals are NOT decomposed — a
// closure is an opaque expression here and is analyzed as its own function
// by the checks that care (its body runs at call time, not at the point it
// is written).

// Block is one basic block: straight-line nodes plus successor edges.
type Block struct {
	// Index orders blocks by creation, entry first. Stable across runs.
	Index int
	// Nodes holds simple statements (*ast.AssignStmt, *ast.ExprStmt,
	// *ast.DeferStmt, ...) and control expressions (the ast.Expr of an if
	// condition, switch tag, or range operand) in execution order.
	Nodes []ast.Node
	// Succs are the possible next blocks. A return/goto block has the exit
	// or target as its only successor; a fallthrough block has one.
	Succs []*Block
}

// CFG is one function body's control-flow graph.
type CFG struct {
	// Entry is the first block executed.
	Entry *Block
	// Exit is the synthetic sink every return (and the final fallthrough)
	// feeds. It holds no nodes.
	Exit *Block
	// Blocks lists every block, entry first, in creation order.
	Blocks []*Block
}

// cfgBuilder carries the under-construction graph and the branch-target
// context (for break/continue/goto).
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// breaks/continues map a loop/switch nesting entry to its targets; the
	// innermost entry is last. label is "" for unlabeled statements.
	targets []branchTargets
	// gotos and labels resolve forward gotos after the walk.
	labels map[string]*Block
	gotos  []pendingGoto
}

type branchTargets struct {
	label     string
	breakTo   *Block
	continue_ *Block // nil for switch/select (continue skips them)
}

type pendingGoto struct {
	from  *Block
	label string
	pos   token.Pos
}

// BuildCFG constructs the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	cfg := &CFG{}
	b := &cfgBuilder{cfg: cfg, labels: map[string]*Block{}}
	cfg.Entry = b.newBlock()
	b.cur = cfg.Entry
	cfg.Exit = b.newBlock()
	b.stmtList(body.List)
	// Fallthrough off the end of the body returns.
	b.edge(b.cur, cfg.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		} else {
			// Unresolvable goto (label in a scope we did not see): be
			// conservative and let control reach the exit.
			b.edge(g.from, cfg.Exit)
		}
	}
	return cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// startBlock finishes cur with an edge to next and makes next current.
func (b *cfgBuilder) startBlock(next *Block) {
	b.edge(b.cur, next)
	b.cur = next
}

// add appends a node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the pending label when the
// statement is the body of a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label marks the start of its statement: materialize a block
		// so gotos have a target, then translate with the label pending so
		// loops register labeled break/continue targets.
		target := b.newBlock()
		b.startBlock(target)
		b.labels[s.Label.Name] = target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Cond)
		condBlk := b.cur
		after := b.newBlock()
		thenBlk := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else, "")
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		header := b.newBlock()
		b.startBlock(header)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock() // continue lands here
		body := b.newBlock()
		b.edge(header, body)
		if s.Cond != nil {
			b.edge(header, after) // condition false
		}
		b.pushTargets(label, after, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popTargets()
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post, "")
		}
		b.edge(b.cur, header) // back edge
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X)
		header := b.newBlock()
		b.startBlock(header)
		// Key/Value are (re)defined each iteration: surface the whole
		// RangeStmt as the header's node so def-collection sees them.
		b.add(s)
		after := b.newBlock()
		body := b.newBlock()
		b.edge(header, body)
		b.edge(header, after) // range exhausted
		b.pushTargets(label, after, header)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popTargets()
		b.edge(b.cur, header) // back edge
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init, "")
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		b.caseClauses(s.Body.List, label, true)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.add(s) // keep the jump itself visible to node walks
		switch s.Tok {
		case token.BREAK:
			b.edge(b.cur, b.findBreak(labelOf(s)))
			b.cur = b.newBlock()
		case token.CONTINUE:
			if t := b.findContinue(labelOf(s)); t != nil {
				b.edge(b.cur, t)
			} else {
				b.edge(b.cur, b.cfg.Exit)
			}
			b.cur = b.newBlock()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name, pos: s.Pos()})
			b.cur = b.newBlock()
		case token.FALLTHROUGH:
			// caseClauses wires the fallthrough edge; nothing to do here.
		}

	default:
		// Simple statements: assignments, expression statements, defers,
		// go statements, declarations, sends, inc/dec, empty.
		b.add(s)
	}
}

// caseClauses translates a switch/type-switch/select body: every clause is
// entered from the header block (evaluation order does not matter for the
// conservative analyses built on top), break exits to after, and a
// fallthrough falls into the next clause.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, label string, isSelect bool) {
	header := b.cur
	after := b.newBlock()
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, cs := range clauses {
		var body []ast.Stmt
		var exprs []ast.Expr
		var comm ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			body, exprs = cs.Body, cs.List
			if cs.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			body, comm = cs.Body, cs.Comm
			if cs.Comm == nil {
				hasDefault = true
			}
		}
		b.edge(header, bodies[i])
		b.cur = bodies[i]
		for _, e := range exprs {
			b.add(e)
		}
		if comm != nil {
			b.stmt(comm, "")
		}
		b.pushTargets(label, after, nil)
		b.stmtList(body)
		b.popTargets()
		// A trailing fallthrough feeds the next clause; otherwise the
		// clause exits the switch.
		if i+1 < len(clauses) && endsInFallthrough(body) {
			b.edge(b.cur, bodies[i+1])
		} else {
			b.edge(b.cur, after)
		}
	}
	// Without a default, no clause may match (for select: block forever —
	// still model the skip edge; the analyses are may-analyses).
	if !hasDefault || len(clauses) == 0 {
		b.edge(header, after)
	}
	_ = isSelect
	b.cur = after
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func labelOf(s *ast.BranchStmt) string {
	if s.Label != nil {
		return s.Label.Name
	}
	return ""
}

func (b *cfgBuilder) pushTargets(label string, breakTo, continueTo *Block) {
	b.targets = append(b.targets, branchTargets{label: label, breakTo: breakTo, continue_: continueTo})
}

func (b *cfgBuilder) popTargets() {
	b.targets = b.targets[:len(b.targets)-1]
}

func (b *cfgBuilder) findBreak(label string) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if label == "" || t.label == label {
			return t.breakTo
		}
	}
	return b.cfg.Exit // stray break: conservatively exit
}

func (b *cfgBuilder) findContinue(label string) *Block {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := b.targets[i]
		if t.continue_ == nil {
			continue // switch/select: continue targets the enclosing loop
		}
		if label == "" || t.label == label {
			return t.continue_
		}
	}
	return nil
}
