package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerCloseCheck guards write-path resource hygiene. For resources
// created by os.Create / os.OpenFile / net.Dial* / net.Listen, a buffered
// write only reaches the kernel at Close, so `defer f.Close()` silently
// drops e.g. a full-disk error. The sanctioned pattern (PR 1) reports the
// close error exactly once:
//
//	defer func() {
//		if cerr := f.Close(); cerr != nil && err == nil {
//			err = fmt.Errorf("...: %w", cerr)
//		}
//	}()
//
// It also flags the double-close shape fixed in PR 1: a function that both
// defers f.Close() and calls f.Close() explicitly.
var AnalyzerCloseCheck = &Analyzer{
	ID:       "closecheck",
	Doc:      "write-path Close errors must be propagated exactly once; no defer+explicit double close",
	Severity: SevError,
	Run:      runCloseCheck,
}

// writableCreators maps package path -> function names that return
// resources whose Close can report buffered-write failures.
var writableCreators = map[string]map[string]bool{
	"os":  {"Create": true, "OpenFile": true},
	"net": {"Dial": true, "DialTimeout": true, "DialTCP": true, "DialUDP": true, "DialUnix": true, "Listen": true, "ListenTCP": true},
}

func runCloseCheck(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCloses(pass, fd.Body)
		}
	}
}

// checkCloses analyzes one function body.
func checkCloses(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: objects assigned from a writable-resource creator.
	writable := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := assign.Rhs[0].(*ast.CallExpr)
		if !ok || !isWritableCreator(pass, call) {
			return true
		}
		if id, ok := assign.Lhs[0].(*ast.Ident); ok {
			if obj := objOf(pass, id); obj != nil {
				writable[obj] = true
			}
		}
		return true
	})
	if len(writable) == 0 {
		return
	}
	// Pass 2: Close call sites per object, split deferred vs direct.
	type closes struct {
		deferred []ast.Node
		direct   []ast.Node
	}
	perObj := map[types.Object]*closes{}
	record := func(obj types.Object) *closes {
		c := perObj[obj]
		if c == nil {
			c = &closes{}
			perObj[obj] = c
		}
		return c
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if obj := closedObj(pass, n.Call); obj != nil && writable[obj] {
				c := record(obj)
				c.deferred = append(c.deferred, n)
				pass.Reportf(n.Pos(), "defer %s discards the Close error on a write path; propagate it exactly once via a named-return defer", closeTarget(n.Call))
			}
			return true
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if obj := closedObj(pass, call); obj != nil && writable[obj] {
					c := record(obj)
					c.direct = append(c.direct, n)
					pass.Reportf(n.Pos(), "%s discards the Close error on a write path; check it", closeTarget(call))
				}
			}
		}
		return true
	})
	for _, c := range perObj {
		if len(c.deferred) > 0 && len(c.direct) > 0 {
			pass.Reportf(c.direct[0].Pos(), "resource is closed here and again by the deferred Close: double close")
		}
	}
}

// closedObj returns the receiver object when call is `x.Close()` on a plain
// identifier, else nil.
func closedObj(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	return objOf(pass, id)
}

func closeTarget(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + ".Close()"
		}
	}
	return "Close()"
}

// isWritableCreator reports whether call is pkg.Fn for a known
// writable-resource creator.
func isWritableCreator(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	names := writableCreators[fn.Pkg().Path()]
	return names != nil && names[fn.Name()]
}

// objOf resolves an identifier to its object via uses then defs.
func objOf(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pass.Info.Defs[id]
}
