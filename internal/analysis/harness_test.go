package analysis

import (
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts the quoted expectation patterns from a `// want "…"`
// comment. Multiple patterns may follow one want marker.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` pattern anchored to a line.
type expectation struct {
	line    int
	pattern *regexp.Regexp
	matched bool
}

// RunTest loads the single package in dir under the fake import path
// pkgPath, runs the analyzer (honoring its Match filter and suppression
// directives, exactly like ddlvet), and compares the diagnostics against
// the `// want "regex"` comments in the corpus. Each want pattern must be
// matched by a diagnostic on its line and every diagnostic must match a
// want pattern, so the corpus encodes positive and negative cases at once.
func RunTest(t *testing.T, dir, pkgPath string, a *Analyzer) {
	t.Helper()
	loader := NewLoader()
	pkg, err := loader.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("// want "):], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", dir, line, m[1], err)
					}
					wants = append(wants, &expectation{line: line, pattern: re})
				}
			}
		}
	}
	diags := RunChecks(pkg, []*Analyzer{a})
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.line == d.Position.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic on line %d matching %q", dir, w.line, w.pattern)
		}
	}
}
