// Package analysis is ddlvet's engine: a stdlib-only static-analysis
// framework plus the project-specific checks that machine-enforce the
// determinism and concurrency invariants documented in DESIGN.md §6–§7.
//
// The framework deliberately avoids golang.org/x/tools: packages are
// discovered with go/build, parsed with go/parser, and type-checked with
// go/types using the stdlib "source" importer, so ddlvet runs anywhere the
// Go toolchain source tree is installed and adds no dependencies.
//
// Each check has a stable ID, a severity, and per-line suppression via
//
//	//ddlvet:ignore CHECKID[,CHECKID...] reason
//
// placed on the flagged line or the line directly above it. Suppressions
// without a reason — or naming a check ID no analyzer owns — are rejected
// (and reported), so every waiver is self-documenting.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Severity classifies how a diagnostic gates the build.
type Severity int

const (
	// SevWarning marks style/robustness findings.
	SevWarning Severity = iota
	// SevError marks determinism or resource-safety violations.
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Analyzer is one ddlvet check.
type Analyzer struct {
	// ID is the stable check identifier used in output and in
	// //ddlvet:ignore directives.
	ID string
	// Doc is a one-line description shown by `ddlvet -list`.
	Doc string
	// Severity applies to every diagnostic the check reports.
	Severity Severity
	// Match, when non-nil, restricts the check to packages whose import
	// path it accepts. Nil means the check runs on every package.
	Match func(pkgPath string) bool
	// Run inspects one type-checked package and reports diagnostics.
	Run func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	PkgPath  string

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:    p.Analyzer.ID,
		Severity: p.Analyzer.Severity,
		Position: p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Check    string
	Severity Severity
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s/%s]",
		d.Position.Filename, d.Position.Line, d.Position.Column,
		d.Message, d.Check, d.Severity)
}

// Checks returns the full ddlvet check set in stable ID order.
func Checks() []*Analyzer {
	all := []*Analyzer{
		AnalyzerAPIErr,
		AnalyzerCloseCheck,
		AnalyzerFloatOrder,
		AnalyzerGoLeak,
		AnalyzerGuardedBy,
		AnalyzerMapOrder,
		AnalyzerPoolEscape,
		AnalyzerTimeNow,
		AnalyzerWaitGroup,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	return all
}

// RunChecks runs the given analyzers over one loaded package and returns
// the diagnostics that survive //ddlvet:ignore suppression, sorted by
// position then check ID. Malformed suppression directives are themselves
// reported under the pseudo-check "ignore".
func RunChecks(pkg *Package, checks []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range checks {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.Path,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)
	}
	diags = filterSuppressed(pkg, diags)
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Check < b.Check
	})
	return diags
}
