// Package core is the ddlvet corpus for the apierr check inside an API
// package (the directory name selects the path filter).
package core

import (
	"fmt"
	"os"
	"strconv"
)

// LoadThreshold returns a cross-package error bare: positive.
func LoadThreshold(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err // want "LoadThreshold returns the error from strconv.ParseFloat bare"
	}
	return v, nil
}

// LoadThresholdWrapped adds local context: negative.
func LoadThresholdWrapped(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("core: parse threshold: %w", err)
	}
	return v, nil
}

// helperErr is unexported local work; its errors are this package's own.
func helperErr(path string) error {
	_, err := os.Stat(path)
	if err != nil {
		return err
	}
	return nil
}

// CheckPath propagates a same-package error bare: negative (helperErr is
// local, the context boundary is the package).
func CheckPath(path string) error {
	err := helperErr(path)
	if err != nil {
		return err
	}
	return nil
}

// Remove returns a foreign call's error directly: positive.
func Remove(path string) error {
	return os.Remove(path) // want "Remove returns the error from os.Remove bare"
}

// RemoveWrapped wraps the direct return: negative.
func RemoveWrapped(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("core: remove: %w", err)
	}
	return nil
}

// Describe returns a non-error foreign result directly: negative.
func Describe(n int) string {
	return strconv.Itoa(n)
}

// rewrap is unexported: negative (only the exported API surface is held to
// the wrapping rule).
func rewrap(s string) error {
	_, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	return nil
}
