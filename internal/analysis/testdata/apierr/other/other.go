// Package other is the ddlvet corpus for the apierr check outside the API
// packages: bare cross-package errors draw no diagnostics here because the
// path filter does not match.
package other

import "strconv"

// LoadThreshold may return a bare error here: negative.
func LoadThreshold(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	return v, nil
}
