// Package floatorder is the ddlvet corpus for the floatorder check.
package floatorder

import "sync"

// AxpyInPlace mimics the repo's in-place accumulator helper.
func AxpyInPlace(dst, src []float64, scale float64) {
	for i := range src {
		dst[i] += src[i] * scale
	}
}

// MeanFromMap accumulates in map-iteration order: positive cases.
func MeanFromMap(m map[string]float64, vecs map[string][]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "float accumulation in map iteration order"
	}
	mean := make([]float64, 4)
	for _, vec := range vecs {
		AxpyInPlace(mean, vec, 0.5) // want "call to accumulator AxpyInPlace in map iteration order"
	}
	return sum / float64(len(m))
}

// MeanSorted accumulates over sorted keys: negative case.
func MeanSorted(m map[string]float64, keys []string) float64 {
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// CountFromMap accumulates a non-float in map order: negative case (integer
// addition is associative, order cannot change the result).
func CountFromMap(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SharedAccumulator writes a captured float from goroutines: positive case.
func SharedAccumulator(xs []float64) float64 {
	var total float64
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		x := x
		go func() {
			defer wg.Done()
			total += x // want "goroutine accumulates into shared float total"
		}()
	}
	wg.Wait()
	return total
}

// PerSlot reduces per-goroutine slots in fixed order: negative case.
func PerSlot(xs []float64) float64 {
	slots := make([]float64, len(xs))
	var wg sync.WaitGroup
	for i, x := range xs {
		wg.Add(1)
		i, x := i, x
		go func() {
			defer wg.Done()
			slots[i] += x * x
		}()
	}
	wg.Wait()
	var total float64
	for _, s := range slots {
		total += s
	}
	return total
}

// LocalInGoroutine accumulates a goroutine-local float: negative case.
func LocalInGoroutine(xs []float64, out chan<- float64) {
	go func() {
		var local float64
		for _, x := range xs {
			local += x
		}
		out <- local
	}()
}
