// Package poolescape is the ddlvet corpus for the poolescape check: the
// scratch-arena ownership rule of DESIGN.md §10. Positive cases model the
// regression that motivated the check (a pooled inference buffer escaping
// EmbedKeyed); negative cases are the sanctioned copy-out idioms.
package poolescape

import "sync"

type scratch struct {
	out []float64
	tmp []float64
}

var pool = sync.Pool{New: func() any { return &scratch{out: make([]float64, 16)} }}

// fill stands in for embedFast: handed the arena, returns a view into it.
func fill(sc *scratch) []float64 {
	for i := range sc.out {
		sc.out[i] = float64(i)
	}
	return sc.out
}

// ReturnPooled returns the arena view a helper produced — the seeded
// EmbedKeyed regression: positive.
func ReturnPooled() []float64 {
	sc := pool.Get().(*scratch)
	res := fill(sc)
	pool.Put(sc)
	return res // want "pooled scratch escapes: returned value"
}

// ReturnDirect returns a field of the arena itself: positive.
func ReturnDirect() []float64 {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	return sc.out // want "pooled scratch escapes: returned value"
}

// CopyOut re-binds through make+copy before returning: negative (the real
// EmbedKeyed shape after the fix).
func CopyOut() []float64 {
	sc := pool.Get().(*scratch)
	res := fill(sc)
	out := make([]float64, len(res))
	copy(out, res)
	pool.Put(sc)
	return out
}

// AppendFresh uses the append-to-nil copy idiom: negative (appending
// scalar elements copies them out of the arena).
func AppendFresh() []float64 {
	sc := pool.Get().(*scratch)
	res := fill(sc)
	out := append([]float64(nil), res...)
	pool.Put(sc)
	return out
}

// Rebind overwrites the tainted local with a fresh copy and returns it:
// negative — reaching-definitions see only the fresh def at the return.
func Rebind() []float64 {
	res := fill(pool.Get().(*scratch))
	res = append([]float64(nil), res...)
	return res
}

// ScalarOut returns a scalar read from the arena: negative (copies by
// value).
func ScalarOut() float64 {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	return sc.out[0]
}

var stash []float64

// StoreGlobal parks the arena in a package variable: positive.
func StoreGlobal() {
	sc := pool.Get().(*scratch)
	stash = sc.out // want "stored in package-level variable stash"
	pool.Put(sc)
}

type holder struct{ buf []float64 }

// StoreField pins pooled memory in an unrelated struct: positive.
func StoreField(h *holder) {
	sc := pool.Get().(*scratch)
	h.buf = sc.out // want "stored in field buf"
	pool.Put(sc)
}

// StoreIntoArena writes within the arena's own ownership: negative.
func StoreIntoArena() {
	sc := pool.Get().(*scratch)
	sc.tmp = sc.out[:4]
	pool.Put(sc)
}

// SendOnChannel ships the borrow to a receiver that outlives us: positive.
func SendOnChannel(ch chan []float64) {
	sc := pool.Get().(*scratch)
	ch <- sc.out // want "sent on a channel"
	pool.Put(sc)
}

// GoCapture hands the arena to a goroutine via closure capture: positive.
func GoCapture() {
	sc := pool.Get().(*scratch)
	go func() { // want "captured by a go-launched closure"
		_ = sc.out
	}()
	pool.Put(sc)
}

// GoArg passes the arena as an explicit goroutine argument: positive.
func GoArg() {
	sc := pool.Get().(*scratch)
	go func(buf []float64) { // verifier reports the argument below
		_ = buf
	}(sc.out) // want "passed to a goroutine"
	pool.Put(sc)
}

// DeferredPut is the canonical borrow pattern: negative (defer and plain
// calls complete before the function returns).
func DeferredPut() float64 {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	res := fill(sc)
	var s float64
	for _, v := range res {
		s += v
	}
	return s
}

// Suppressed returns the arena under a reviewed waiver: suppressed.
func Suppressed() []float64 {
	sc := pool.Get().(*scratch)
	//ddlvet:ignore poolescape caller copies synchronously before the next Get
	return sc.out
}
