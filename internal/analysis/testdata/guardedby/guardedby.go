// Package guardedby is the ddlvet corpus for the guardedby check: fields
// annotated //ddlvet:guardedby <mutexField> may only be accessed with that
// mutex held on the same receiver. The positive cases model the
// Controller.Collector race that motivated the annotation.
package guardedby

import "sync"

// registry models core.Controller: an RWMutex guarding annotated fields.
type registry struct {
	mu sync.RWMutex
	//ddlvet:guardedby mu
	entries map[string]int
	count   int //ddlvet:guardedby mu
}

// Get reads under RLock: negative.
func (r *registry) Get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[k]
}

// Put writes under Lock: negative.
func (r *registry) Put(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries[k] = v
	r.count++
}

// UnlockedRead is the shape of the seeded Controller.Collector race:
// positive.
func (r *registry) UnlockedRead(k string) int {
	return r.entries[k] // want "read of r.entries without holding r.mu"
}

// WriteUnderRLock mutates while holding only the read lock: positive.
func (r *registry) WriteUnderRLock(k string, v int) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.entries[k] = v // want "write to r.entries without holding r.mu"
}

// BranchyUnlock releases on one path; the join must drop the lock:
// positive.
func (r *registry) BranchyUnlock(flush bool) int {
	r.mu.RLock()
	if flush {
		r.mu.RUnlock()
	}
	n := r.entries["x"] // want "read of r.entries without holding r.mu"
	if !flush {
		r.mu.RUnlock()
	}
	return n
}

// DoubleChecked is the topology-cache pattern: read under RLock, re-check
// and write under Lock. Negative.
func (r *registry) DoubleChecked(k string) int {
	r.mu.RLock()
	v := r.entries[k]
	r.mu.RUnlock()
	if v == 0 {
		r.mu.Lock()
		r.entries[k] = 1
		v = r.entries[k]
		r.mu.Unlock()
	}
	return v
}

// upsertLocked follows the caller-holds *Locked convention: negative.
func (r *registry) upsertLocked(k string, v int) {
	r.entries[k] = v
	r.count++
}

// NewRegistry writes fields of a value it just constructed — no other
// goroutine can see it yet: negative.
func NewRegistry() *registry {
	r := &registry{}
	r.entries = map[string]int{}
	r.count = 1
	return r
}

// CallbackEscape returns a closure that reads a guarded field with no
// lock; the closure may run on any goroutine: positive.
func (r *registry) CallbackEscape() func() int {
	return func() int {
		return r.count // want "read of r.count without holding r.mu"
	}
}

// CallbackLocks takes the lock inside the closure: negative.
func (r *registry) CallbackLocks() func() int {
	return func() int {
		r.mu.RLock()
		defer r.mu.RUnlock()
		return r.count
	}
}

// SuppressedRead carries a reviewed waiver: suppressed.
func (r *registry) SuppressedRead() int {
	return r.count //ddlvet:ignore guardedby racy snapshot is documented and acceptable here
}

// counter uses a plain sync.Mutex: reads need Lock too.
type counter struct {
	mu sync.Mutex
	n  int //ddlvet:guardedby mu
}

// Inc increments under the lock: negative.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Read reads without any lock: positive (plain Mutex has no shared mode).
func (c *counter) Read() int {
	return c.n // want "read of c.n without holding c.mu"
}

type wrapper struct{ reg *registry }

// Chained reaches a guarded field through a chain; locking cannot be
// proven through an intermediate pointer: positive.
func (w *wrapper) Chained() int {
	return w.reg.entries["x"] // want "accessed through a chained expression"
}

// badguard exercises the malformed-annotation diagnostics.
type badguard struct {
	mu sync.Mutex
	n  int //ddlvet:guardedby lock // want "struct has no sync.Mutex/sync.RWMutex field named"
	m  int //ddlvet:guardedby // want "needs the guarding mutex field name"
}

// use silences unused-field vet noise for badguard.
func use(b *badguard) int { return b.n + b.m }
