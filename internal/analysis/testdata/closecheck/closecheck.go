// Package closecheck is the ddlvet corpus for the closecheck check.
package closecheck

import (
	"fmt"
	"net"
	"os"
)

// SaveBad defers Close on a write path, discarding the error: positive.
func SaveBad(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "defer f.Close\(\) discards the Close error on a write path"
	_, err = f.Write(data)
	return err
}

// SaveGood propagates the close error exactly once: negative.
func SaveGood(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("save: %w", cerr)
		}
	}()
	_, err = f.Write(data)
	return err
}

// ReadGood defers Close on a read path: negative (os.Open is not a
// writable-resource creator; read-side close errors carry no data loss).
func ReadGood(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

// DoubleClose closes explicitly and again via defer: positive for both the
// discarded error and the double close.
func DoubleClose(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want "defer f.Close\(\) discards the Close error"
	if _, err := f.Write(data); err != nil {
		f.Close() // want "f.Close\(\) discards the Close error" "double close"
		return err
	}
	return nil
}

// DialDiscard drops a dialed connection's close error: positive.
func DialDiscard(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	conn.Close() // want "conn.Close\(\) discards the Close error"
	return nil
}

// DialChecked returns the close error: negative.
func DialChecked(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return conn.Close()
}
