// Package other is the ddlvet corpus for the timenow check outside the
// deterministic packages: the same calls draw no diagnostics because the
// path filter does not match this package.
package other

import (
	"math/rand"
	"time"
)

// Stamp may read the wall clock here: negative.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Jitter may use the global RNG here: negative.
func Jitter() float64 {
	return rand.Float64()
}
