// Package simulator is the ddlvet corpus for the timenow check inside a
// deterministic package (the directory name selects the path filter).
package simulator

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock: positive.
func Stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a deterministic package"
}

// Jitter draws from the process-global RNG: positive.
func Jitter() float64 {
	return rand.Float64() // want "global rand.Float64 in a deterministic package"
}

// SeededJitter draws from an explicitly seeded source: negative.
func SeededJitter(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Elapsed uses an injected clock: negative.
func Elapsed(clock func() time.Time, start time.Time) time.Duration {
	return clock().Sub(start)
}
