// Package suppress is the ddlvet corpus for //ddlvet:ignore handling,
// exercised through the floatorder check.
package suppress

// SameLine suppresses on the flagged line: negative.
func SameLine(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //ddlvet:ignore floatorder corpus exercises same-line suppression
	}
	return sum
}

// LineAbove suppresses from the preceding line: negative.
func LineAbove(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//ddlvet:ignore floatorder corpus exercises line-above suppression
		sum += v
	}
	return sum
}

// WrongCheck suppresses a different check ID, so the diagnostic stands:
// positive.
func WrongCheck(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //ddlvet:ignore maporder wrong ID does not cover floatorder // want "float accumulation in map iteration order"
	}
	return sum
}
