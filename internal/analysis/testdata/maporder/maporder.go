// Package maporder is the ddlvet corpus for the maporder check.
package maporder

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// DumpDirect serializes inside a map range: positive.
func DumpDirect(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "Fprintf called while ranging over a map"
	}
}

// DumpSorted iterates sorted keys: negative.
func DumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

type response struct {
	Names []string `json:"names"`
}

// EncodeUnsorted collects map keys and encodes them without sorting, with
// the slice wrapped in a struct first: positive.
func EncodeUnsorted(w io.Writer, m map[string]int) error {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	resp := response{Names: names}
	return json.NewEncoder(w).Encode(resp) // want "slice names was filled from a map range and reaches Encode unsorted"
}

// EncodeSorted sorts before encoding: negative.
func EncodeSorted(w io.Writer, m map[string]int) error {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return json.NewEncoder(w).Encode(response{Names: names})
}

// ArgmaxTie lets map order break ties: positive.
func ArgmaxTie(scores map[string]float64) string {
	best, bestScore := "", -1.0
	for name, s := range scores {
		if s > bestScore {
			best, bestScore = name, s // want "selects the value of best \(" "selects the value of bestScore"
		}
	}
	return best
}

// SumValues consumes a map without ordering sensitivity: negative (no
// serialization, no selection of key-derived values).
func SumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
