// Package goleak is the ddlvet corpus for the goleak check: a goroutine
// launched in a cancelable function (one taking a context.Context or a
// struct{} done channel) must observe the cancellation signal, be joined
// by a WaitGroup, or be collected through a channel the function receives
// from.
package goleak

import (
	"context"
	"sync"
)

// LeakyWorker spawns a free-running goroutine in a cancelable function:
// positive.
func LeakyWorker(ctx context.Context, jobs []int) {
	results := make([]int, len(jobs))
	go func() { // want "can outlive cancellation"
		for i, j := range jobs {
			results[i] = j * 2
		}
	}()
	<-ctx.Done()
}

// CtxObserver selects on ctx.Done inside the goroutine: negative.
func CtxObserver(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ctx.Done():
		case v := <-ch:
			_ = v
		}
	}()
}

// CtxForwarder hands the context to the spawned function: negative.
func CtxForwarder(ctx context.Context) {
	go worker(ctx)
}

func worker(ctx context.Context) { <-ctx.Done() }

// WaitGrouped is joined by a WaitGroup before return: negative.
func WaitGrouped(ctx context.Context, n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
	_ = ctx
}

// ChannelCollected sends its result on a channel the function receives
// from — the core.Server.Serve error-channel pattern: negative.
func ChannelCollected(ctx context.Context) error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case err := <-errc:
		return err
	}
}

func work() error { return nil }

// DoneChanLeak takes a done channel the goroutine never watches:
// positive.
func DoneChanLeak(done chan struct{}, out []int) {
	go func() { // want "can outlive cancellation"
		for i := range out {
			out[i] = i
		}
	}()
	<-done
}

// DoneChanObserved watches the done channel: negative.
func DoneChanObserved(done <-chan struct{}, tick chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case <-tick:
			}
		}
	}()
}

// NamedLeak go-launches a named function without handing it the context:
// positive.
func NamedLeak(ctx context.Context) {
	go spin() // want "can outlive cancellation"
	<-ctx.Done()
}

func spin() {}

// NotCancelable has no ctx/done parameter: out of the check's scope,
// negative.
func NotCancelable(n int) {
	go func() { _ = n }()
}

// SuppressedLeak carries a reviewed waiver: suppressed.
func SuppressedLeak(ctx context.Context) {
	//ddlvet:ignore goleak fire-and-forget flush bounded by its own timeout
	go spin()
	<-ctx.Done()
}
