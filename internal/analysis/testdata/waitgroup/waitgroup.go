// Package waitgroup is the ddlvet corpus for the waitgroup check.
package waitgroup

import "sync"

// AddInside calls wg.Add from the spawned goroutine: positive.
func AddInside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1) // want "wg.Add inside the spawned goroutine races with wg.Wait"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// AddOutside calls wg.Add before spawning: negative.
func AddOutside(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

type pool struct {
	mu sync.Mutex
	wg sync.WaitGroup
	n  int
}

// WaitUnderDeferredLock waits while a deferred unlock still holds the
// mutex: positive.
func (p *pool) WaitUnderDeferredLock() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wg.Wait() // want "wg.Wait while holding a mutex"
	return p.n
}

// WaitUnderExplicitLock waits between Lock and Unlock: positive.
func (p *pool) WaitUnderExplicitLock() {
	p.mu.Lock()
	p.wg.Wait() // want "wg.Wait while holding a mutex"
	p.mu.Unlock()
}

// WaitAfterUnlock releases the mutex before waiting: negative.
func (p *pool) WaitAfterUnlock() {
	p.mu.Lock()
	p.n++
	p.mu.Unlock()
	p.wg.Wait()
}

// WaitWithoutLock never touches the mutex: negative.
func (p *pool) WaitWithoutLock() {
	p.wg.Wait()
}
