package analysis

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// loadRepo loads every package of the enclosing module, exactly as the
// ddlvet binary's default `./...` invocation does.
func loadRepo(tb testing.TB) []*Package {
	tb.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		tb.Fatalf("module root: %v", err)
	}
	pkgs, err := NewLoader().LoadModule(root)
	if err != nil {
		tb.Fatalf("load module: %v", err)
	}
	if len(pkgs) == 0 {
		tb.Fatal("no packages loaded")
	}
	return pkgs
}

// TestDdlvetSelfRunBudget runs the full check set over this repository and
// enforces two contracts at once: the run stays inside its wall-clock
// budget (the `make verify` gate must stay fast enough to run on every
// commit), and the tree is clean — zero unsuppressed diagnostics. The
// budget defaults to 120s (a loose multiple of the ~10s baseline, slack
// for loaded CI machines) and can be tuned with DDLVET_BUDGET_SECONDS.
func TestDdlvetSelfRunBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("self-run budget skipped in -short mode")
	}
	budget := 120 * time.Second
	if env := os.Getenv("DDLVET_BUDGET_SECONDS"); env != "" {
		secs, err := strconv.Atoi(env)
		if err != nil || secs <= 0 {
			t.Fatalf("bad DDLVET_BUDGET_SECONDS %q", env)
		}
		budget = time.Duration(secs) * time.Second
	}
	start := time.Now()
	pkgs := loadRepo(t)
	checks := Checks()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, RunChecks(pkg, checks)...)
	}
	elapsed := time.Since(start)
	for _, d := range diags {
		t.Errorf("unsuppressed diagnostic in the tree: %s", d)
	}
	if elapsed > budget {
		t.Errorf("ddlvet self-run took %v, over the %v budget", elapsed, budget)
	}
	t.Logf("ddlvet self-run: %d packages, %v", len(pkgs), elapsed)
}

// BenchmarkDdlvetRepo measures the analysis cost alone (load once, run the
// checks per iteration) so a dataflow-engine regression shows up as a
// per-op jump rather than being drowned by type-checking time.
func BenchmarkDdlvetRepo(b *testing.B) {
	pkgs := loadRepo(b)
	checks := Checks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, pkg := range pkgs {
			n += len(RunChecks(pkg, checks))
		}
		if n != 0 {
			b.Fatalf("%d unexpected diagnostics", n)
		}
	}
}

// BenchmarkDdlvetLoadAndRun measures the end-to-end gate, type-checking
// included — what `make ddlvet` actually costs.
func BenchmarkDdlvetLoadAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs := loadRepo(b)
		checks := Checks()
		for _, pkg := range pkgs {
			RunChecks(pkg, checks)
		}
	}
}
