package analysis

import "testing"

// TestChecksCorpus runs every analyzer against its testdata corpus. The
// fake import paths route the path-filtered checks (timenow, apierr) onto
// and off of their target packages.
func TestChecksCorpus(t *testing.T) {
	cases := []struct {
		dir     string
		pkgPath string
		a       *Analyzer
	}{
		{"testdata/floatorder", "corpus/floatorder", AnalyzerFloatOrder},
		{"testdata/closecheck", "corpus/closecheck", AnalyzerCloseCheck},
		{"testdata/maporder", "corpus/maporder", AnalyzerMapOrder},
		{"testdata/waitgroup", "corpus/waitgroup", AnalyzerWaitGroup},
		{"testdata/timenow/simulator", "corpus/timenow/simulator", AnalyzerTimeNow},
		{"testdata/timenow/other", "corpus/timenow/other", AnalyzerTimeNow},
		{"testdata/apierr/core", "corpus/apierr/core", AnalyzerAPIErr},
		{"testdata/apierr/other", "corpus/apierr/other", AnalyzerAPIErr},
		{"testdata/suppress", "corpus/suppress", AnalyzerFloatOrder},
		{"testdata/poolescape", "corpus/poolescape", AnalyzerPoolEscape},
		{"testdata/guardedby", "corpus/guardedby", AnalyzerGuardedBy},
		{"testdata/goleak", "corpus/goleak", AnalyzerGoLeak},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.pkgPath, func(t *testing.T) {
			t.Parallel()
			RunTest(t, tc.dir, tc.pkgPath, tc.a)
		})
	}
}

// TestChecksRegistry pins the published check set: IDs are unique, sorted,
// documented, and at least the six tentpole checks exist.
func TestChecksRegistry(t *testing.T) {
	checks := Checks()
	if len(checks) < 9 {
		t.Fatalf("got %d checks, want >= 9", len(checks))
	}
	seen := map[string]bool{}
	for i, a := range checks {
		if a.ID == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("check %d is missing ID/Doc/Run", i)
		}
		if seen[a.ID] {
			t.Errorf("duplicate check ID %q", a.ID)
		}
		seen[a.ID] = true
		if i > 0 && checks[i-1].ID >= a.ID {
			t.Errorf("checks not sorted: %q before %q", checks[i-1].ID, a.ID)
		}
	}
	for _, id := range []string{"apierr", "closecheck", "floatorder", "goleak", "guardedby", "maporder", "poolescape", "timenow", "waitgroup"} {
		if !seen[id] {
			t.Errorf("missing required check %q", id)
		}
	}
}
