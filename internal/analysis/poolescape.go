package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerPoolEscape machine-enforces the scratch-arena ownership rule from
// DESIGN.md §10: a value obtained from sync.Pool.Get — or anything
// reachable from one (a field, an element, a slice of the arena, or the
// result of a call the arena was passed to) — is owned by the pool and must
// not outlive the function that borrowed it. Escapes flagged: returning it,
// storing it into a field, global, map, or dereferenced pointer, sending it
// on a channel, and capturing it in a go-launched closure. Passing it down
// a call chain and deferring (the canonical `defer pool.Put(sc)`) are fine:
// both complete before the function returns.
//
// The analysis is a conservative intraprocedural escape lattice over the
// reaching-definitions solution (dataflow.go): a local is pool-owned at a
// use iff any pool-tainted definition reaches it, so re-binding the local
// to a fresh copy (`out := make(...); copy(out, res)` or
// `res = append([]float64(nil), res...)`) correctly clears ownership.
var AnalyzerPoolEscape = &Analyzer{
	ID:       "poolescape",
	Doc:      "values from sync.Pool.Get must not escape the borrowing function (return/field/global/map/channel/goroutine)",
	Severity: SevError,
	Run:      runPoolEscape,
}

func runPoolEscape(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkPoolEscape(pass, n.Type, n.Body)
				}
			case *ast.FuncLit:
				// Each literal is its own borrowing scope; nested literals
				// are visited (and analyzed) by the continuing walk.
				checkPoolEscape(pass, n.Type, n.Body)
			}
			return true
		})
	}
}

// isPoolGet reports whether call is (*sync.Pool).Get.
func isPoolGet(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	selection := pass.Info.Selections[sel]
	if selection == nil {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// pointerLike reports whether t can carry a reference to pooled storage:
// pointers, slices, maps, channels, funcs, interfaces, and composites
// containing any of those. Plain scalars copied out of an arena (a float,
// an int length) are safe by value.
func pointerLike(t types.Type) bool {
	switch t := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return t.Kind() == types.String || t.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if pointerLike(t.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return pointerLike(t.Elem())
	}
	return false
}

// poolEscapeScope carries one function's analysis state.
type poolEscapeScope struct {
	pass    *Pass
	rd      *ReachingDefs
	tainted map[int]bool // def id -> pool-owned
}

// checkPoolEscape analyzes one function body.
func checkPoolEscape(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	// Fast pre-pass: skip functions that never touch a pool.
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPoolGet(pass, call) {
			found = true
		}
		return !found
	})
	if !found {
		return
	}

	cfg := BuildCFG(body)
	rd := SolveReachingDefs(cfg, pass.Info, body, paramObjs(pass, ftype))
	sc := &poolEscapeScope{pass: pass, rd: rd, tainted: map[int]bool{}}

	// Escape-lattice fixpoint: a def is pool-owned when its RHS evaluates
	// tainted under the defs reaching its own site. RHS taint can depend on
	// other defs, so iterate until stable (the lattice only grows).
	for changed := true; changed; {
		changed = false
		for _, blk := range cfg.Blocks {
			rd.Walk(blk, func(n ast.Node, live defSet) {
				for _, d := range rd.collectNodeDefs(n) {
					if d.RHS == nil || sc.tainted[d.id] {
						continue
					}
					if pointerLike(d.Obj.Type()) && sc.exprTainted(d.RHS, live) {
						sc.tainted[d.id] = true
						changed = true
					}
				}
			})
		}
	}

	// Violation scan with the converged lattice.
	for _, blk := range cfg.Blocks {
		rd.Walk(blk, func(n ast.Node, live defSet) {
			sc.checkNode(n, live)
		})
	}
}

// paramObjs resolves the parameter and named-result objects of a function
// type; they seed the reaching-defs entry set (and are never pool-owned).
func paramObjs(pass *Pass, ftype *ast.FuncType) []types.Object {
	var objs []types.Object
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					objs = append(objs, obj)
				}
			}
		}
	}
	collect(ftype.Params)
	collect(ftype.Results)
	return objs
}

// exprTainted evaluates the escape lattice on one expression given the
// live reaching definitions.
func (sc *poolEscapeScope) exprTainted(e ast.Expr, live defSet) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := sc.pass.Info.Uses[e]
		if obj == nil {
			obj = sc.pass.Info.Defs[e]
		}
		if obj == nil {
			return false
		}
		for _, d := range sc.rd.ReachingAt(obj, live) {
			if sc.tainted[d.id] {
				return true
			}
		}
		return false
	case *ast.SelectorExpr:
		// A field of the arena is arena-owned.
		return sc.exprTainted(e.X, live)
	case *ast.IndexExpr:
		return sc.exprTainted(e.X, live)
	case *ast.SliceExpr:
		return sc.exprTainted(e.X, live)
	case *ast.StarExpr:
		return sc.exprTainted(e.X, live)
	case *ast.ParenExpr:
		return sc.exprTainted(e.X, live)
	case *ast.UnaryExpr:
		return sc.exprTainted(e.X, live)
	case *ast.TypeAssertExpr:
		// pool.Get().(*T) — the canonical borrow.
		return sc.exprTainted(e.X, live)
	case *ast.CallExpr:
		return sc.callTainted(e, live)
	case *ast.CompositeLit:
		// Wrapping the arena in a struct/slice keeps it pool-owned.
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if sc.exprTainted(el, live) {
				return true
			}
		}
		return false
	case *ast.FuncLit:
		// A closure capturing a pool-owned local carries the arena with it.
		return sc.closureCaptures(e, live)
	case *ast.BinaryExpr:
		// Comparisons and arithmetic produce fresh scalars.
		return false
	}
	return false
}

// callTainted models calls: pool.Get seeds the lattice; builtins that
// allocate (make, new) are fresh; append is tainted only when its backing
// array or a pointer-like element is; any other call is conservatively
// tainted when the arena is among its arguments and the result can hold a
// reference (a helper handed the arena frequently returns a view into it —
// exactly how embedFast returns sc.out).
func (sc *poolEscapeScope) callTainted(call *ast.CallExpr, live defSet) bool {
	if isPoolGet(sc.pass, call) {
		return true
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		switch sc.builtinName(id) {
		case "make", "new", "len", "cap", "copy", "min", "max", "delete", "clear":
			return false
		case "append":
			if len(call.Args) == 0 {
				return false
			}
			if sc.exprTainted(call.Args[0], live) {
				return true
			}
			for i, arg := range call.Args[1:] {
				if !sc.exprTainted(arg, live) {
					continue
				}
				// appending values: x... of a scalar element type copies
				// scalars out of the arena — safe; appending a pointer-like
				// element retains a reference.
				if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
					if slice, ok := sc.pass.Info.Types[arg].Type.Underlying().(*types.Slice); ok && !pointerLike(slice.Elem()) {
						continue
					}
				}
				return true
			}
			return false
		}
	}
	// Type conversions of tainted values stay tainted.
	if tv, ok := sc.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && sc.exprTainted(call.Args[0], live)
	}
	tv, ok := sc.pass.Info.Types[call]
	if !ok || !pointerLike(tv.Type) {
		return false
	}
	for _, arg := range call.Args {
		if sc.exprTainted(arg, live) {
			return true
		}
	}
	// Method value on the arena: sc.buf.Reset() style — receiver tainted.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sc.pass.Info.Selections[sel] != nil {
		return sc.exprTainted(sel.X, live)
	}
	return false
}

func (sc *poolEscapeScope) builtinName(id *ast.Ident) string {
	if _, ok := sc.pass.Info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// closureCaptures reports whether lit references a local that has any
// pool-tainted definition. Flow-insensitive inside the literal (it may run
// at any later time, so every def of the captured variable is in play).
func (sc *poolEscapeScope) closureCaptures(lit *ast.FuncLit, live defSet) bool {
	_ = live
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		obj := sc.pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		for _, defID := range sc.rd.byObj[obj] {
			if sc.tainted[defID] {
				captured = true
			}
		}
		return true
	})
	return captured
}

// checkNode reports the escapes one CFG node performs.
func (sc *poolEscapeScope) checkNode(n ast.Node, live defSet) {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if sc.escapeCarrier(res) && sc.exprTainted(res, live) {
				sc.pass.Reportf(res.Pos(), "pooled scratch escapes: returned value is owned by a sync.Pool; copy into a fresh buffer before returning")
			}
		}
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0]
			}
			if rhs == nil || !sc.escapeCarrier(rhs) || !sc.exprTainted(rhs, live) {
				continue
			}
			sc.checkStore(lhs, live)
		}
	case *ast.SendStmt:
		if sc.escapeCarrier(n.Value) && sc.exprTainted(n.Value, live) {
			sc.pass.Reportf(n.Value.Pos(), "pooled scratch escapes: sent on a channel; the receiver outlives the borrowing function")
		}
	case *ast.GoStmt:
		sc.checkGoCall(n.Call, live)
	}
}

// escapeCarrier reports whether e's type can carry a reference out of the
// function. Scalars read from the arena (sc.out[0], len(sc.buf)) escape by
// value and are always safe.
func (sc *poolEscapeScope) escapeCarrier(e ast.Expr) bool {
	tv, ok := sc.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return true // unknown type: stay conservative
	}
	return pointerLike(tv.Type)
}

// checkStore classifies an assignment target holding a tainted value.
func (sc *poolEscapeScope) checkStore(lhs ast.Expr, live defSet) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := sc.pass.Info.Uses[lhs]
		if obj == nil {
			obj = sc.pass.Info.Defs[lhs]
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			sc.pass.Reportf(lhs.Pos(), "pooled scratch escapes: stored in package-level variable %s", lhs.Name)
		}
		// Local rebinding is ownership transfer within the function: fine.
	case *ast.SelectorExpr:
		// Storing into a field of the arena itself keeps the value inside
		// the pool's ownership; anything else pins pooled memory.
		if !sc.exprTainted(lhs.X, live) {
			sc.pass.Reportf(lhs.Pos(), "pooled scratch escapes: stored in field %s of a non-pooled value", lhs.Sel.Name)
		}
	case *ast.IndexExpr:
		if !sc.exprTainted(lhs.X, live) {
			sc.pass.Reportf(lhs.Pos(), "pooled scratch escapes: stored in a map or slice that outlives the borrow")
		}
	case *ast.StarExpr:
		if !sc.exprTainted(lhs.X, live) {
			sc.pass.Reportf(lhs.Pos(), "pooled scratch escapes: stored through a pointer that outlives the borrow")
		}
	}
}

// checkGoCall flags pooled values handed to a goroutine: both explicit
// arguments and closure captures race with the pool once the spawning
// function returns the arena.
func (sc *poolEscapeScope) checkGoCall(call *ast.CallExpr, live defSet) {
	for _, arg := range call.Args {
		if sc.escapeCarrier(arg) && sc.exprTainted(arg, live) {
			sc.pass.Reportf(arg.Pos(), "pooled scratch escapes: passed to a goroutine that may outlive the borrowing function")
		}
	}
	if lit, ok := unparen(call.Fun).(*ast.FuncLit); ok && sc.closureCaptures(lit, live) {
		sc.pass.Reportf(call.Pos(), "pooled scratch escapes: captured by a go-launched closure that may outlive the borrowing function")
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
