package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseIgnore is the table test for the //ddlvet:ignore parser.
func TestParseIgnore(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		ok      bool // recognized as a ddlvet directive
		wantErr string
		check   string
		reason  string
	}{
		{name: "well formed", comment: "//ddlvet:ignore floatorder mean is cosmetic here", ok: true, check: "floatorder", reason: "mean is cosmetic here"},
		{name: "tab separated", comment: "//ddlvet:ignore\tmaporder\tlegacy output order", ok: true, check: "maporder", reason: "legacy output order"},
		{name: "multi word reason", comment: "//ddlvet:ignore apierr the caller wraps with request context", ok: true, check: "apierr", reason: "the caller wraps with request context"},
		{name: "missing reason", comment: "//ddlvet:ignore closecheck", ok: true, wantErr: "needs a reason"},
		{name: "missing everything", comment: "//ddlvet:ignore", ok: true, wantErr: "needs a check ID and a reason"},
		{name: "missing everything trailing space", comment: "//ddlvet:ignore   ", ok: true, wantErr: "needs a check ID and a reason"},
		{name: "not a directive", comment: "// plain comment", ok: false},
		{name: "prefix collision", comment: "//ddlvet:ignored floatorder reason", ok: false},
		{name: "other tool directive", comment: "//nolint:errcheck", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ig, ok, err := ParseIgnore(tc.comment)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected err: %v", err)
			}
			if !tc.ok {
				return
			}
			if ig.Check != tc.check || ig.Reason != tc.reason {
				t.Fatalf("got (%q, %q), want (%q, %q)", ig.Check, ig.Reason, tc.check, tc.reason)
			}
		})
	}
}

// TestMalformedIgnoreReported loads a package whose only directive is
// missing its reason: the finding survives and the directive itself is
// reported under the "ignore" pseudo-check.
func TestMalformedIgnoreReported(t *testing.T) {
	dir := t.TempDir()
	src := `package broken

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v //ddlvet:ignore floatorder
	}
	return s
}
`
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadDir(dir, "corpus/broken")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunChecks(pkg, []*Analyzer{AnalyzerFloatOrder})
	var gotIgnore, gotFloat bool
	for _, d := range diags {
		switch d.Check {
		case "ignore":
			gotIgnore = true
			if !strings.Contains(d.Message, "needs a reason") {
				t.Errorf("ignore diagnostic message = %q", d.Message)
			}
		case "floatorder":
			gotFloat = true
		}
	}
	if !gotIgnore || !gotFloat {
		t.Fatalf("want both ignore and floatorder diagnostics, got %v", diags)
	}
}
