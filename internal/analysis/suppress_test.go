package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseIgnore is the table test for the //ddlvet:ignore parser.
func TestParseIgnore(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		ok      bool // recognized as a ddlvet directive
		wantErr string
		checks  []string
		reason  string
	}{
		{name: "well formed", comment: "//ddlvet:ignore floatorder mean is cosmetic here", ok: true, checks: []string{"floatorder"}, reason: "mean is cosmetic here"},
		{name: "tab separated", comment: "//ddlvet:ignore\tmaporder\tlegacy output order", ok: true, checks: []string{"maporder"}, reason: "legacy output order"},
		{name: "multi word reason", comment: "//ddlvet:ignore apierr the caller wraps with request context", ok: true, checks: []string{"apierr"}, reason: "the caller wraps with request context"},
		{name: "comma list", comment: "//ddlvet:ignore poolescape,guardedby borrowed under lock for the call", ok: true, checks: []string{"poolescape", "guardedby"}, reason: "borrowed under lock for the call"},
		{name: "comma list of three", comment: "//ddlvet:ignore apierr,timenow,maporder test fixture", ok: true, checks: []string{"apierr", "timenow", "maporder"}, reason: "test fixture"},
		{name: "missing reason", comment: "//ddlvet:ignore closecheck", ok: true, wantErr: "needs a reason"},
		{name: "comma list missing reason", comment: "//ddlvet:ignore poolescape,guardedby", ok: true, wantErr: "needs a reason"},
		{name: "empty ID in list", comment: "//ddlvet:ignore poolescape,,guardedby reason", ok: true, wantErr: "empty check ID"},
		{name: "trailing comma", comment: "//ddlvet:ignore poolescape, reason", ok: true, wantErr: "empty check ID"},
		{name: "missing everything", comment: "//ddlvet:ignore", ok: true, wantErr: "needs a check ID and a reason"},
		{name: "missing everything trailing space", comment: "//ddlvet:ignore   ", ok: true, wantErr: "needs a check ID and a reason"},
		{name: "not a directive", comment: "// plain comment", ok: false},
		{name: "prefix collision", comment: "//ddlvet:ignored floatorder reason", ok: false},
		{name: "other tool directive", comment: "//nolint:errcheck", ok: false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ig, ok, err := ParseIgnore(tc.comment)
			if ok != tc.ok {
				t.Fatalf("ok = %v, want %v", ok, tc.ok)
			}
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected err: %v", err)
			}
			if !tc.ok {
				return
			}
			if strings.Join(ig.Checks, "|") != strings.Join(tc.checks, "|") || ig.Reason != tc.reason {
				t.Fatalf("got (%q, %q), want (%q, %q)", ig.Checks, ig.Reason, tc.checks, tc.reason)
			}
		})
	}
}

// TestMalformedIgnoreReported loads a package whose only directive is
// missing its reason: the finding survives and the directive itself is
// reported under the "ignore" pseudo-check.
func TestMalformedIgnoreReported(t *testing.T) {
	dir := t.TempDir()
	src := `package broken

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v //ddlvet:ignore floatorder
	}
	return s
}
`
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadDir(dir, "corpus/broken")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunChecks(pkg, []*Analyzer{AnalyzerFloatOrder})
	var gotIgnore, gotFloat bool
	for _, d := range diags {
		switch d.Check {
		case "ignore":
			gotIgnore = true
			if !strings.Contains(d.Message, "needs a reason") {
				t.Errorf("ignore diagnostic message = %q", d.Message)
			}
		case "floatorder":
			gotFloat = true
		}
	}
	if !gotIgnore || !gotFloat {
		t.Fatalf("want both ignore and floatorder diagnostics, got %v", diags)
	}
}

// TestUnknownCheckIDReported: a directive naming a check no analyzer owns
// is itself a diagnostic — the waiver never silently applies.
func TestUnknownCheckIDReported(t *testing.T) {
	dir := t.TempDir()
	src := `package broken

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v //ddlvet:ignore floatorderr summation order is fine
	}
	return s
}
`
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadDir(dir, "corpus/broken")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunChecks(pkg, []*Analyzer{AnalyzerFloatOrder})
	var gotIgnore, gotFloat bool
	for _, d := range diags {
		switch d.Check {
		case "ignore":
			gotIgnore = true
			if !strings.Contains(d.Message, `unknown check "floatorderr"`) {
				t.Errorf("ignore diagnostic message = %q", d.Message)
			}
		case "floatorder":
			gotFloat = true
		}
	}
	if !gotIgnore || !gotFloat {
		t.Fatalf("want both ignore and floatorder diagnostics, got %v", diags)
	}
}

// TestCommaListSuppressesAll: one //ddlvet:ignore a,b directive covers
// findings from both named checks on its line.
func TestCommaListSuppressesAll(t *testing.T) {
	dir := t.TempDir()
	// Package path ends in "tensor" so the timenow check's Match accepts it;
	// the accumulation line trips floatorder and timenow at once.
	src := `package tensor

import "time"

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v + float64(time.Now().Unix()) //ddlvet:ignore floatorder,timenow fixture exercises both checks at once
	}
	return s
}
`
	if err := os.WriteFile(filepath.Join(dir, "multi.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadDir(dir, "corpus/tensor")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunChecks(pkg, []*Analyzer{AnalyzerFloatOrder, AnalyzerTimeNow})
	for _, d := range diags {
		t.Errorf("unexpected surviving diagnostic: %v", d)
	}

	// Guard against a vacuous pass: without the directive, both checks fire.
	bare := strings.Replace(src, " //ddlvet:ignore floatorder,timenow fixture exercises both checks at once", "", 1)
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "multi.go"), []byte(bare), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg2, err := NewLoader().LoadDir(dir2, "corpus/tensor")
	if err != nil {
		t.Fatal(err)
	}
	var checks []string
	for _, d := range RunChecks(pkg2, []*Analyzer{AnalyzerFloatOrder, AnalyzerTimeNow}) {
		checks = append(checks, d.Check)
	}
	got := strings.Join(checks, ",")
	if !strings.Contains(got, "floatorder") || !strings.Contains(got, "timenow") {
		t.Fatalf("without the directive want floatorder and timenow findings, got %q", got)
	}
}
