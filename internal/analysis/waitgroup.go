package analysis

import (
	"go/ast"
	"go/types"
)

// AnalyzerWaitGroup enforces the two WaitGroup rules from DESIGN.md §6:
//
//   - wg.Add must run in the spawning goroutine, before `go`; calling it
//     inside the spawned goroutine races with wg.Wait and can let Wait
//     return while work is still starting;
//   - wg.Wait must not be called while holding a mutex: handlers that need
//     that mutex deadlock against the waiter.
var AnalyzerWaitGroup = &Analyzer{
	ID:       "waitgroup",
	Doc:      "wg.Add belongs in the spawning goroutine; wg.Wait must not run under a held mutex",
	Severity: SevError,
	Run:      runWaitGroup,
}

func runWaitGroup(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkAddInGoroutine(pass, lit)
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkWaitUnderLock(pass, n.Body)
				}
			}
			return true
		})
	}
}

// isSyncMethod reports whether call is recv.method() where recv's type is
// sync.<typeName>, returning the receiver object.
func isSyncMethod(pass *Pass, call *ast.CallExpr, typeNames map[string]bool, method string) (types.Object, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	selection := pass.Info.Selections[sel]
	if selection == nil {
		return nil, false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return nil, false
	}
	if !typeNames[named.Obj().Name()] {
		return nil, false
	}
	// Resolve the receiver object for the common ident / field-selector
	// receivers (wg.Add, c.wg.Add): key on the rightmost identifier chain.
	switch x := sel.X.(type) {
	case *ast.Ident:
		return objOf(pass, x), true
	case *ast.SelectorExpr:
		return pass.Info.Uses[x.Sel], true
	}
	return nil, true
}

var wgType = map[string]bool{"WaitGroup": true}
var mutexTypes = map[string]bool{"Mutex": true, "RWMutex": true}

// checkAddInGoroutine flags wg.Add calls inside a go-launched func literal
// when wg is captured from outside (a per-goroutine local WaitGroup is
// fine, if pointless).
func checkAddInGoroutine(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj, ok := isSyncMethod(pass, call, wgType, "Add")
		if !ok {
			return true
		}
		if obj == nil || obj.Pos() < lit.Body.Pos() || obj.Pos() > lit.Body.End() {
			pass.Reportf(call.Pos(), "wg.Add inside the spawned goroutine races with wg.Wait; call Add before the go statement")
		}
		return true
	})
}

// checkWaitUnderLock walks one function body in statement order tracking
// which mutexes are held, and flags wg.Wait while any is locked. Deferred
// unlocks keep the mutex held until return, so a Wait after
// `mu.Lock(); defer mu.Unlock()` is flagged.
func checkWaitUnderLock(pass *Pass, body *ast.BlockStmt) {
	held := map[types.Object]bool{}
	var walk func(ast.Stmt)
	walkCall := func(call *ast.CallExpr, deferred bool) {
		if obj, ok := isSyncMethod(pass, call, mutexTypes, "Lock"); ok && obj != nil {
			held[obj] = true
		} else if obj, ok := isSyncMethod(pass, call, mutexTypes, "RLock"); ok && obj != nil {
			held[obj] = true
		} else if obj, ok := isSyncMethod(pass, call, mutexTypes, "Unlock"); ok && obj != nil && !deferred {
			delete(held, obj)
		} else if obj, ok := isSyncMethod(pass, call, mutexTypes, "RUnlock"); ok && obj != nil && !deferred {
			delete(held, obj)
		} else if _, ok := isSyncMethod(pass, call, wgType, "Wait"); ok && len(held) > 0 {
			pass.Reportf(call.Pos(), "wg.Wait while holding a mutex: goroutines that need the lock deadlock against the waiter")
		}
	}
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				walkCall(call, false)
			}
		case *ast.DeferStmt:
			walkCall(s.Call, true)
		case *ast.BlockStmt:
			for _, st := range s.List {
				walk(st)
			}
		case *ast.IfStmt:
			// Branches share the held-set: an unlock inside a branch
			// clears it. That is optimistic but keeps false positives low.
			walk(s.Body)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.ForStmt:
			walk(s.Body)
		case *ast.RangeStmt:
			walk(s.Body)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, st := range cc.Body {
						walk(st)
					}
				}
			}
		}
	}
	for _, s := range body.List {
		walk(s)
	}
}
