package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerFloatOrder enforces the bit-determinism invariant from DESIGN.md
// §6: floating-point reductions must run in a fixed order. Two orderings
// break that silently:
//
//   - accumulating over a map range (iteration order is randomized), and
//   - accumulating into a shared variable from inside a goroutine (the
//     interleaving picks the order). Per-slot writes (slots[i] = ...,
//     reduced in index order afterwards) are the sanctioned pattern and
//     are not flagged.
var AnalyzerFloatOrder = &Analyzer{
	ID:       "floatorder",
	Doc:      "float accumulation in map-iteration or goroutine-interleaving order breaks bit-determinism",
	Severity: SevError,
	Run:      runFloatOrder,
}

// isAccumName reports whether a callee name suggests in-place float
// accumulation (the repo's tensor.AxpyInPlace, Sum-style reducers). A name
// match alone is not enough: the call must also take a float or float-slice
// argument, so e.g. Checksum(string) never matches.
func isAccumName(name string) bool {
	l := strings.ToLower(name)
	if strings.Contains(l, "axpy") || strings.Contains(l, "accumulate") {
		return true
	}
	// "Sum" as a camel-case word: Sum, VecSum, SumInPlace — but not Summary.
	for i := 0; i+3 <= len(name); i++ {
		w := name[i : i+3]
		if w != "Sum" && !(i == 0 && w == "sum") {
			continue
		}
		if j := i + 3; j == len(name) || name[j] < 'a' || name[j] > 'z' {
			return true
		}
	}
	return false
}

// hasFloatArg reports whether any argument is a float or a float slice.
func hasFloatArg(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		t := tv.Type.Underlying()
		if sl, ok := t.(*types.Slice); ok {
			t = sl.Elem().Underlying()
		}
		if b, ok := t.(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			return true
		}
	}
	return false
}

func runFloatOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if isMapType(pass, n.X) {
					checkFloatAccumIn(pass, n.Body, "map iteration order")
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineAccum(pass, lit)
				}
			}
			return true
		})
	}
}

func isMapType(pass *Pass, x ast.Expr) bool {
	tv, ok := pass.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isFloat(pass *Pass, x ast.Expr) bool {
	tv, ok := pass.Info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkFloatAccumIn flags float compound assignments and accumulation
// helper calls anywhere inside body. Nested fixed-order loops inside the
// body don't rescue the outer unordered iteration, so the walk is total.
func checkFloatAccumIn(pass *Pass, body *ast.BlockStmt, why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN || n.Tok == token.MUL_ASSIGN {
				for _, lhs := range n.Lhs {
					if isFloat(pass, lhs) {
						pass.Reportf(n.Pos(), "float accumulation in %s is not bit-deterministic; iterate sorted keys or reduce per-slot in fixed order", why)
						return true
					}
				}
			}
		case *ast.CallExpr:
			if name := calleeName(n); isAccumName(name) && hasFloatArg(pass, n) {
				pass.Reportf(n.Pos(), "call to accumulator %s in %s is not bit-deterministic; iterate sorted keys or reduce per-slot in fixed order", name, why)
			}
		}
		return true
	})
}

// calleeName returns the bare name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// checkGoroutineAccum flags float compound assignment inside a go-launched
// func literal whose target is a plain variable captured from the enclosing
// scope. Index-expression targets (per-slot accumulation) are allowed.
func checkGoroutineAccum(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return true // nested literals still run inside the goroutine
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || (assign.Tok != token.ADD_ASSIGN && assign.Tok != token.SUB_ASSIGN && assign.Tok != token.MUL_ASSIGN) {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || !isFloat(pass, id) {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				obj = pass.Info.Defs[id]
			}
			if obj == nil {
				continue
			}
			// Captured: declared outside the literal's body.
			if obj.Pos() < lit.Body.Pos() || obj.Pos() > lit.Body.End() {
				pass.Reportf(assign.Pos(), "goroutine accumulates into shared float %s; interleaving order changes the result — write a per-goroutine slot and reduce in fixed order", id.Name)
			}
		}
		return true
	})
}
