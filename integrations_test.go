package predictddl

import (
	"testing"
)

func TestPredictorScheduler(t *testing.T) {
	p := sharedPredictor(t)
	s, err := p.NewScheduler(16, EDF)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *Graph {
		g, err := BuildModel(name, p.Dataset())
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	rep, err := s.Simulate([]SchedJob{
		{ID: "small", Graph: mk("squeezenet1_1"), Deadline: 60},
		{ID: "mid", Graph: mk("resnet18"), Deadline: 120},
		{ID: "hopeless", Graph: mk("vgg16"), Deadline: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Admitted < 2 {
		t.Fatalf("admitted %d of the feasible jobs", rep.Admitted)
	}
	if rep.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1 (the 0.5s-deadline job)", rep.Rejected)
	}
	// With a well-trained predictor most admitted deadlines are met.
	if rep.DeadlinesMet < rep.Admitted-1 {
		t.Fatalf("met %d/%d deadlines", rep.DeadlinesMet, rep.Admitted)
	}
}

func TestPredictorNASSearch(t *testing.T) {
	p := sharedPredictor(t)
	res, err := p.SearchArchitectures(NASOptions{
		Population:    6,
		Generations:   2,
		BudgetSeconds: 500,
		Seed:          3,
	}, func(g *Graph) float64 { return float64(g.Depth()) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Graph == nil || res.Best.PredictedSeconds > 500 {
		t.Fatalf("best = %+v", res.Best)
	}
	if res.Evaluated != 12 {
		t.Fatalf("evaluated %d", res.Evaluated)
	}
}

func TestAnalyticalBaseline(t *testing.T) {
	p := sharedPredictor(t)
	m := p.AnalyticalBaseline()
	g, err := BuildModel("resnet18", p.Dataset())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := LookupServerSpec("cloudlab-p100")
	if err != nil {
		t.Fatal(err)
	}
	secs, err := m.Predict(g, Homogeneous(4, spec))
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Fatalf("paleo predicted %v", secs)
	}
	// Paleo needs no training: it works without any campaign, but the
	// learned engine should be closer to ground truth on depthwise-heavy
	// models (asserted in internal/paleo tests).
}
