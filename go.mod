module predictddl

go 1.22
