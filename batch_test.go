package predictddl

import (
	"testing"
)

// PredictBatch must agree bitwise with the serial Predict loop — the batch
// path only changes scheduling, never arithmetic.
func TestPredictBatchMatchesSerial(t *testing.T) {
	p := sharedPredictor(t)
	models := []string{"resnet18", "vgg11", "squeezenet1_1", "resnet18", "mobilenet_v2"}
	batch, err := p.PredictBatch(models, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(models) {
		t.Fatalf("batch returned %d results for %d models", len(batch), len(models))
	}
	for i, m := range models {
		serial, err := p.Predict(m, 8)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != serial {
			t.Fatalf("%s: batch %v, serial %v", m, batch[i], serial)
		}
	}
}

func TestPredictBatchRejectsBadInput(t *testing.T) {
	p := sharedPredictor(t)
	if _, err := p.PredictBatch([]string{"resnet18"}, 0); err == nil {
		t.Fatal("zero servers accepted")
	}
	if _, err := p.PredictBatch([]string{"not-a-model"}, 4); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestPredictGraphBatchPerItemErrors(t *testing.T) {
	p := sharedPredictor(t)
	g, err := BuildModel("vgg11", p.Dataset())
	if err != nil {
		t.Fatal(err)
	}
	cl := Homogeneous(4, p.spec)
	res, err := p.PredictGraphBatch([]*Graph{g, nil}, []Cluster{cl, cl})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].Seconds <= 0 {
		t.Fatalf("good item failed: %+v", res[0])
	}
	if res[1].Err == nil {
		t.Fatal("nil graph item did not record an error")
	}
}
