GO ?= go

.PHONY: all build test race vet ddlvet bench smoke verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific determinism/concurrency checks (DESIGN.md §7); exits
# non-zero on any non-suppressed diagnostic.
ddlvet:
	$(GO) run ./cmd/ddlvet ./...

# -shuffle=on randomizes test order so inter-test state dependence fails
# loudly instead of passing by accident.
test:
	$(GO) test -shuffle=on ./...

# Short mode keeps the race pass fast; the full suite runs race-free logic
# anyway and CI mirrors this target.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/tensor/ ./internal/ghn/ ./internal/core/

# End-to-end smoke: the live-cluster example trains a predictor, runs
# collector + agents + HTTP controller in one process, and survives an
# injected collector restart (~5 s). Fails loudly if the serving path rots.
smoke:
	$(GO) run ./examples/livecluster

verify: vet build ddlvet test race smoke
