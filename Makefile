GO ?= go

.PHONY: all build test race vet ddlvet vetbench bench loadbench leaderboard smoke cover fuzz verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific determinism/concurrency checks (DESIGN.md §7, §11);
# exits non-zero on any non-suppressed diagnostic.
ddlvet:
	$(GO) run ./cmd/ddlvet ./...

# ddlvet self-run benchmark + wall-clock budget: the analysis engine runs
# over this repository and must finish inside DDLVET_BUDGET_SECONDS
# (default 120s), so a dataflow-engine perf regression fails the build
# instead of silently slowing every commit.
vetbench:
	$(GO) test ./internal/analysis/ -run TestDdlvetSelfRunBudget -v
	$(GO) test ./internal/analysis/ -run '^$$' -bench 'BenchmarkDdlvet' -benchtime 2x -benchmem

# -shuffle=on randomizes test order so inter-test state dependence fails
# loudly instead of passing by accident.
test:
	$(GO) test -shuffle=on ./...

# Short mode keeps the race pass fast; the full suite runs race-free logic
# anyway and CI mirrors this target.
race:
	$(GO) test -race -short ./...

# Micro-benchmarks plus the embed fast-path report: BENCH_embed.json
# records ns/op, allocs/op, p50/p99, and the reference-vs-fast-path
# speedup ratios for this machine (CI uploads it as an artifact).
bench: vetbench
	$(GO) test -bench . -benchmem -run '^$$' ./internal/tensor/ ./internal/ghn/ ./internal/core/
	$(GO) run ./cmd/ddlbench -bench-embed BENCH_embed.json

# Serving-tier load benchmark (DESIGN.md §12): ddlload stands up an
# in-process synthetic controller, drives seeded open-loop (Poisson) and
# closed-loop runs over the mixed scenario blend, searches for the max
# sustained RPS inside the p99 SLO, measures allocs/op on the warm predict
# path, and writes BENCH_serve.json. The run then gates against the
# committed baseline: >15% p99 regression (beyond a 2 ms noise floor) or a
# newly saturated histogram fails the target.
loadbench:
	$(GO) run ./cmd/ddlload -self -seed 1 -rps 150 -duration 3s \
		-closed-requests 300 -concurrency 8 -trial-duration 800ms \
		-max-rps-cap 800 -out BENCH_serve.json \
		-baseline BENCH_serve_baseline.json -max-p99-regress 0.15
	$(GO) run ./cmd/ddlload -self -gateway -gateway-replicas 2 -seed 1 \
		-rps 120 -duration 3s -closed-requests 300 -concurrency 8 \
		-mix "zoo=40,batch=10,custom=10,gateway=30,notfound=5,oversized=5" \
		-trial-duration 800ms -max-rps-cap 600 -out BENCH_serve_gateway.json \
		-baseline BENCH_serve_gateway_baseline.json -max-p99-regress 0.15

# Backend leaderboard (DESIGN.md §14): every registered regress backend ×
# every zoo dataset under seeded 5-fold CV, written to
# BENCH_leaderboard.json. The artifact is deterministic (same seed ⇒
# byte-identical), and the run gates the floor: each learned backend added
# for the leaderboard (knn, gb-stumps) must beat the analytical roofline on
# at least one dataset, or the target fails. -quick keeps the campaign and
# GHN small enough for CI.
leaderboard:
	$(GO) run ./cmd/ddlbench -quick -leaderboard -leaderboard-out BENCH_leaderboard.json

# End-to-end smoke: the live-cluster example trains a predictor, runs
# collector + agents + HTTP controller in one process, and survives an
# injected collector restart (~5 s). Fails loudly if the serving path rots.
smoke:
	$(GO) run ./examples/livecluster

# Per-package coverage table with an 80% floor on the serving path and the
# predictor backends (internal/core, internal/cluster, internal/obs,
# internal/regress).
cover:
	./scripts/cover.sh

# Short fuzz pass over every target: the request decoders behind
# /v1/predict and /v1/predict/batch, the collector's wire-frame codec, and
# the regressor-checkpoint decoder. CI runs this; long exploratory sessions
# use `go test -fuzz` directly.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzPredictRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzBatchRequest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster -run '^$$' -fuzz FuzzFrameDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/regress -run '^$$' -fuzz FuzzLoadRegressor -fuzztime $(FUZZTIME)

verify: vet build ddlvet test race smoke cover loadbench leaderboard
