GO ?= go

.PHONY: all build test race vet bench verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode keeps the race pass fast; the full suite runs race-free logic
# anyway and CI mirrors this target.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/tensor/ ./internal/ghn/ ./internal/core/

verify: vet build test race
