package predictddl

import (
	"bytes"
	"strings"
	"testing"
)

func TestPredictorSaveLoadRoundTrip(t *testing.T) {
	p := sharedPredictor(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"resnet18", "vgg16", "resnet50"} {
		for _, servers := range []int{1, 8} {
			a, err := p.Predict(model, servers)
			if err != nil {
				t.Fatal(err)
			}
			b, err := back.Predict(model, servers)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("%s/%d: %v != %v after round trip", model, servers, a, b)
			}
		}
	}
	if back.Dataset().Name != "cifar10" {
		t.Fatalf("dataset = %q", back.Dataset().Name)
	}
	// Embeddings survive too.
	ea, _ := p.Embedding("resnet18")
	eb, _ := back.Embedding("resnet18")
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("embeddings differ after round trip")
		}
	}
}

func TestPredictorSaveLoadFile(t *testing.T) {
	p := sharedPredictor(t)
	path := t.TempDir() + "/predictor.pddl"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Predict("vgg16", 4)
	b, _ := back.Predict("vgg16", 4)
	if a != b {
		t.Fatalf("file round trip changed prediction: %v vs %v", a, b)
	}
	if _, err := LoadPredictorFile(t.TempDir() + "/missing.pddl"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadPredictorGarbage(t *testing.T) {
	if _, err := LoadPredictor(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}
