// Command collector runs one node of the Cluster Resource Collector
// (§III-F of the paper). In server mode it maintains the live cluster
// inventory; in agent mode it registers a machine and streams utilization
// updates.
//
// Usage:
//
//	collector server -addr :9090
//	collector agent  -addr HOST:9090 -hostname node-1 -spec cloudlab-p100 \
//	                 [-cpu 0.2] [-gpu 0.1] [-disk 0.0] [-interval 5s] [-reconnect]
//
// Agents default to reconnecting mode: a collector restart or network blip
// is healed by redialing with seeded exponential backoff.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"predictddl/internal/cluster"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "server":
		err = runServer(os.Args[2:])
	case "agent":
		err = runAgent(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "collector: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "collector:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  collector server -addr :9090 [-ttl 30s] [-max-handlers 64] [-max-msg-bytes 65536]
  collector agent  -addr HOST:9090 -hostname NAME -spec SPEC [-cpu F] [-gpu F] [-disk F]
                   [-interval 5s] [-reconnect] [-backoff 50ms] [-max-backoff 2s] [-seed 1]`)
}

func runServer(args []string) error {
	fs := flag.NewFlagSet("server", flag.ExitOnError)
	addr := fs.String("addr", ":9090", "TCP listen address")
	ttl := fs.Duration("ttl", 30*time.Second, "registration time-to-live (also the silent-connection read deadline)")
	maxHandlers := fs.Int("max-handlers", 64, "max concurrent connection handlers")
	maxMsg := fs.Int("max-msg-bytes", 64<<10, "max bytes per protocol message")
	if err := fs.Parse(args); err != nil {
		return err
	}
	col, err := cluster.NewCollector(*addr, cluster.CollectorOptions{
		TTL: *ttl, MaxHandlers: *maxHandlers, MaxMessageBytes: *maxMsg,
	})
	if err != nil {
		return err
	}
	defer col.Close()
	fmt.Fprintf(os.Stderr, "collector listening on %s\n", col.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			return nil
		case <-tick.C:
			snap := col.Snapshot()
			fmt.Fprintf(os.Stderr, "%s inventory: %d live server(s)\n", time.Now().Format(time.TimeOnly), len(snap))
			for _, s := range snap {
				fmt.Fprintf(os.Stderr, "  %-16s %-20s cpu %.0f%% gpu %.0f%%\n",
					s.Hostname, s.Server.Spec.Name, 100*s.Server.CPUUtil, 100*s.Server.GPUUtil)
			}
		}
	}
}

func runAgent(args []string) error {
	fs := flag.NewFlagSet("agent", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9090", "collector address")
	hostname := fs.String("hostname", "", "this server's name (required)")
	specName := fs.String("spec", "cloudlab-e5-2630", "machine class")
	cpu := fs.Float64("cpu", 0, "reported CPU utilization in [0,1]")
	gpu := fs.Float64("gpu", 0, "reported GPU utilization in [0,1]")
	disk := fs.Float64("disk", 0, "reported disk load in [0,1]")
	interval := fs.Duration("interval", 5*time.Second, "report interval")
	reconnect := fs.Bool("reconnect", true, "self-heal through collector outages (redial with backoff)")
	backoff := fs.Duration("backoff", 50*time.Millisecond, "base reconnect backoff")
	maxBackoff := fs.Duration("max-backoff", 2*time.Second, "reconnect backoff ceiling")
	seed := fs.Int64("seed", 1, "backoff jitter seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *hostname == "" {
		h, err := os.Hostname()
		if err != nil {
			return fmt.Errorf("-hostname required (auto-detect failed: %w)", err)
		}
		*hostname = h
	}
	spec, err := cluster.LookupSpec(*specName)
	if err != nil {
		return err
	}
	agent, err := cluster.DialAgentOptions(*addr, *hostname, spec, cluster.AgentOptions{
		Reconnect:   *reconnect,
		BaseBackoff: *backoff,
		MaxBackoff:  *maxBackoff,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	defer agent.Close()
	fmt.Fprintf(os.Stderr, "agent %s registered with %s as %s\n", *hostname, *addr, spec.Name)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-sig:
			return nil
		case <-tick.C:
			if err := agent.Report(*cpu, *gpu, *disk, 0); err != nil {
				return fmt.Errorf("report failed (collector gone?): %w", err)
			}
		}
	}
}
