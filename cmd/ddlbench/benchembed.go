// The -bench-embed mode: measure the GHN embed pipeline's tape-based
// reference path against the tape-free fast path (float64 and float32) on
// this machine and write the results as JSON — the BENCH_embed.json
// artifact `make bench` produces and CI uploads.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"predictddl/internal/ghn"
	"predictddl/internal/graph"
	"predictddl/internal/obs"
	"predictddl/internal/tensor"
)

// benchEmbedCorpus is the zoo slice the benchmark sweeps — a spread of
// graph sizes and shapes rather than one flagship model, so the numbers
// are not dominated by a single topology.
var benchEmbedCorpus = []string{
	"squeezenet1_1",
	"resnet18",
	"resnet50",
	"vgg11",
	"mobilenet_v3_small",
}

// benchEmbedSweeps is how many passes over the corpus each variant runs
// after warmup; sized so the whole benchmark stays CI-friendly while each
// variant still records hundreds of latency observations.
const benchEmbedSweeps = 30

type embedVariantResult struct {
	// Name is reference (tape-building Forward path), float64 (tape-free
	// fast path, bit-identical to reference), or float32.
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	P50Seconds  float64 `json:"p50_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	Ops         int     `json:"ops"`
}

type embedBenchReport struct {
	GeneratedAt string               `json:"generated_at"`
	GoVersion   string               `json:"go_version"`
	NumCPU      int                  `json:"num_cpu"`
	Seed        int64                `json:"seed"`
	Corpus      []string             `json:"corpus"`
	Sweeps      int                  `json:"sweeps"`
	Variants    []embedVariantResult `json:"variants"`
	// Ratios of the reference path over the named fast path — the
	// speedup/allocation-reduction acceptance numbers for this machine.
	SpeedupFloat64         float64 `json:"speedup_float64_vs_reference"`
	SpeedupFloat32         float64 `json:"speedup_float32_vs_reference"`
	AllocsReductionFloat64 float64 `json:"allocs_reduction_float64_vs_reference"`
	AllocsReductionFloat32 float64 `json:"allocs_reduction_float32_vs_reference"`
}

// runBenchEmbed benchmarks the three embed routes over the seeded corpus
// and writes the JSON report to path.
func runBenchEmbed(path string, seed int64) error {
	section(fmt.Sprintf("Embed fast-path benchmark — %d models × %d sweeps per variant", len(benchEmbedCorpus), benchEmbedSweeps))
	// Random-initialized weights are enough for a throughput benchmark:
	// the kernel cost is shape-driven, and skipping training keeps the
	// mode fast enough for CI.
	g := ghn.New(ghn.DefaultConfig(), tensor.NewRNG(seed))

	graphs := make([]*graph.Graph, len(benchEmbedCorpus))
	keys := make([]string, len(benchEmbedCorpus))
	for i, name := range benchEmbedCorpus {
		gr, err := graph.Build(name, graph.DefaultConfig())
		if err != nil {
			return err
		}
		graphs[i] = gr
		keys[i] = gr.Fingerprint()
	}

	variants := []struct {
		name string
		call func(gr *graph.Graph, key string) ([]float64, error)
	}{
		{"reference", func(gr *graph.Graph, _ string) ([]float64, error) { return g.EmbedReference(gr) }},
		{"float64", func(gr *graph.Graph, key string) ([]float64, error) { return g.EmbedKeyed(gr, key, ghn.Float64) }},
		{"float32", func(gr *graph.Graph, key string) ([]float64, error) { return g.EmbedKeyed(gr, key, ghn.Float32) }},
	}

	rep := embedBenchReport{
		GeneratedAt: clock.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Seed:        seed,
		Corpus:      benchEmbedCorpus,
		Sweeps:      benchEmbedSweeps,
	}
	for _, v := range variants {
		res, err := measureEmbedVariant(v.name, graphs, keys, v.call)
		if err != nil {
			return fmt.Errorf("variant %s: %w", v.name, err)
		}
		rep.Variants = append(rep.Variants, res)
		fmt.Printf("%-10s %12.0f ns/op %12.1f allocs/op   p50 %.3gs p99 %.3gs\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.P50Seconds, res.P99Seconds)
	}

	ref, f64, f32 := rep.Variants[0], rep.Variants[1], rep.Variants[2]
	rep.SpeedupFloat64 = ratio(ref.NsPerOp, f64.NsPerOp)
	rep.SpeedupFloat32 = ratio(ref.NsPerOp, f32.NsPerOp)
	rep.AllocsReductionFloat64 = ratio(ref.AllocsPerOp, f64.AllocsPerOp)
	rep.AllocsReductionFloat32 = ratio(ref.AllocsPerOp, f32.AllocsPerOp)
	fmt.Printf("float64 fast path: %.2fx faster, %.0fx fewer allocations than the tape path\n",
		rep.SpeedupFloat64, rep.AllocsReductionFloat64)
	fmt.Printf("float32 fast path: %.2fx faster, %.0fx fewer allocations than the tape path\n",
		rep.SpeedupFloat32, rep.AllocsReductionFloat32)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// measureEmbedVariant runs one warmup sweep (populating the topology cache
// and scratch pools, as a steady-state server would), then measures
// benchEmbedSweeps timed sweeps. Per-op latency lands in the same
// ghn.embed.seconds histogram shape /v1/metrics exposes; allocations are
// the runtime.MemStats Mallocs delta across the timed region.
func measureEmbedVariant(name string, graphs []*graph.Graph, keys []string, call func(*graph.Graph, string) ([]float64, error)) (embedVariantResult, error) {
	reg := obs.NewRegistry(clock)
	hist := reg.Histogram("ghn.embed.seconds", obs.LatencyBuckets())

	for i := range graphs {
		if _, err := call(graphs[i], keys[i]); err != nil {
			return embedVariantResult{}, err
		}
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := clock.Now()
	ops := 0
	for sweep := 0; sweep < benchEmbedSweeps; sweep++ {
		for i := range graphs {
			t0 := clock.Now()
			if _, err := call(graphs[i], keys[i]); err != nil {
				return embedVariantResult{}, err
			}
			hist.ObserveDuration(obs.Since(clock, t0))
			ops++
		}
	}
	total := obs.Since(clock, start)
	runtime.ReadMemStats(&after)

	hv, _ := reg.Snapshot().HistogramByName("ghn.embed.seconds")
	return embedVariantResult{
		Name:        name,
		NsPerOp:     float64(total.Nanoseconds()) / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
		P50Seconds:  hv.Quantile(0.5),
		P99Seconds:  hv.Quantile(0.99),
		Ops:         ops,
	}, nil
}

// ratio returns a/b, guarding the degenerate zero-denominator case so the
// report never contains Inf (invalid JSON).
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
