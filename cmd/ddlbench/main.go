// Command ddlbench regenerates the PredictDDL paper's evaluation figures
// (see DESIGN.md §3 for the experiment index). By default it trains the
// full-scale lab — the complete 31-model zoo across 1–20 servers on both
// datasets — and prints every figure; -fig selects one.
//
// Usage:
//
//	ddlbench [-fig all|1|2|5|6|9|10|11|12|13|baselines|hetero|sharedghn|confidence]
//	         [-seed N] [-quick] [-dump-campaign points.csv]
//	         [-ghn-batch N] [-ghn-parallel N] [-batch N] [-infer32] [-metrics]
//	         [-bench-embed BENCH_embed.json]
//	         [-leaderboard] [-leaderboard-out BENCH_leaderboard.json] [-folds N]
//	         [-leaderboard-timings]
//
// -quick downsizes the lab (fewer GHN training graphs, fewer cluster
// sizes) for a fast smoke run; -dump-campaign exports the CIFAR-10
// measurement campaign as CSV and exits.
//
// -ghn-batch and -ghn-parallel tune GHN training speed: gradients for a
// mini-batch of N graphs are computed in parallel and reduced in fixed
// order, so for a given -ghn-batch the figures are bit-identical at any
// -ghn-parallel. -batch N skips the figures, trains one quick predictor,
// and times a batch of N predictions cold (empty embedding cache) and warm
// against the serial Predict loop, reporting p50/p99 embed latency from the
// obs histograms; -infer32 runs that demo on the float32 embedding fast
// path. -bench-embed FILE benchmarks the tape-based reference embed against
// the tape-free float64/float32 fast paths and writes the JSON report
// (ns/op, allocs/op, p50/p99, speedup ratios) to FILE — the BENCH_embed.json
// artifact CI uploads. -metrics instruments the lab with a metrics registry and
// prints its snapshot (GHN step times, embed latencies) after the figure
// run; instrumentation never changes figure output.
//
// -leaderboard runs every registered predictor backend (see DESIGN.md §14)
// over every dataset's campaign via seeded k-fold cross-validation, prints
// the per-dataset ranking with fit/predict wall time, and writes the
// deterministic BENCH_leaderboard.json artifact (byte-identical across
// same-seed runs; -leaderboard-timings appends a wall-clock section at the
// cost of that reproducibility). The run fails unless the knn and gb-stumps
// backends each beat the analytical roofline floor on at least one dataset.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"predictddl"
	"predictddl/internal/dataset"
	"predictddl/internal/experiments"
	"predictddl/internal/obs"
	"predictddl/internal/simulator"
)

// clock is the single time source for every ad-hoc measurement in this
// command; stage timings all flow through obs so ddlbench reports the same
// histograms the serving path exposes on /v1/metrics.
var clock obs.Clock = obs.SystemClock{}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 1, 2, 5, 6, 9, 10, 11, 12, 13, baselines, hetero, sharedghn, confidence")
	seed := flag.Int64("seed", 1, "deterministic seed for the whole lab")
	quick := flag.Bool("quick", false, "downsized lab for a fast smoke run")
	dumpCampaign := flag.String("dump-campaign", "", "write the CIFAR-10 campaign points to this CSV file and exit")
	ghnBatch := flag.Int("ghn-batch", 0, "GHN training mini-batch size (0 = per-graph updates)")
	ghnParallel := flag.Int("ghn-parallel", 0, "GHN training workers per batch (0 = NumCPU, 1 = serial; results are identical either way)")
	batchDemo := flag.Int("batch", 0, "run the batch-prediction demo over N workloads instead of the figures")
	infer32 := flag.Bool("infer32", false, "run the batch demo on the float32 embedding fast path")
	benchEmbed := flag.String("bench-embed", "", "benchmark the embed fast path and write the JSON report to FILE, then exit")
	metrics := flag.Bool("metrics", false, "print the lab's metrics registry snapshot after the run")
	leaderboard := flag.Bool("leaderboard", false, "run the predictor-backend leaderboard over every dataset instead of the figures")
	leaderboardOut := flag.String("leaderboard-out", "BENCH_leaderboard.json", "leaderboard artifact path")
	leaderboardTimings := flag.Bool("leaderboard-timings", false, "append wall-clock fit/predict timings to the artifact (makes it non-reproducible)")
	folds := flag.Int("folds", 5, "leaderboard cross-validation fold count")
	flag.Parse()

	if *benchEmbed != "" {
		exitOn(runBenchEmbed(*benchEmbed, *seed))
		return
	}
	if *batchDemo > 0 {
		exitOn(runBatchDemo(*batchDemo, *seed, *ghnBatch, *ghnParallel, *infer32))
		return
	}

	lab := experiments.NewLab(*seed)
	lab.GHNBatchSize = *ghnBatch
	lab.GHNParallelism = *ghnParallel
	if *metrics {
		lab.Obs = obs.NewRegistry(clock)
	}
	if *quick {
		lab.GHNGraphs = 64
		lab.GHNEpochs = 6
		lab.ServerCounts = []int{1, 2, 4, 8, 12, 16, 20}
	}

	if *leaderboard {
		exitOn(runLeaderboard(lab, *leaderboardOut, *folds, *leaderboardTimings))
		return
	}

	if *dumpCampaign != "" {
		points, err := lab.Campaign(lab.CIFAR10())
		exitOn(err)
		f, err := os.Create(*dumpCampaign)
		exitOn(err)
		exitOn(simulator.WriteCSV(f, points))
		exitOn(f.Close())
		fmt.Printf("wrote %d campaign points to %s\n", len(points), *dumpCampaign)
		return
	}

	want := func(id string) bool { return *fig == "all" || *fig == id }
	start := clock.Now()
	ran := 0

	if want("1") {
		res, err := experiments.Fig01VGG16(lab)
		exitOn(err)
		section("Fig. 1 — black box vs gray box, VGG-16 (paper: up to 99.5% RMSE improvement)")
		fmt.Println(res)
		ran++
	}
	if want("2") {
		res, err := experiments.Fig02MobileNetV3(lab)
		exitOn(err)
		section("Fig. 2 — black box vs gray box, MobileNet-V3 (paper: up to 91.2% improvement)")
		fmt.Println(res)
		ran++
	}
	if want("5") {
		res, err := experiments.Fig05EmbeddingSpace(lab)
		exitOn(err)
		section("Fig. 5 — cosine similarity of GHN embeddings (same family ⇒ more similar)")
		fmt.Print(res)
		ran++
	}
	if want("6") {
		rows, err := experiments.Fig06FeatureAblation(lab)
		exitOn(err)
		section("Fig. 6 — DNN feature ablation (paper: GHN ≫ layers/params; closer to 1 is better)")
		for _, r := range rows {
			fmt.Println(r)
		}
		ran++
	}
	if want("9") {
		rows, sum, err := experiments.Fig09(lab)
		exitOn(err)
		section("Fig. 9 — PredictDDL vs Ernest per Table-II workload (paper: 9.8x lower error, 8% mean)")
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Println("summary:", sum)
		ran++
	}
	if want("10") {
		rows, err := experiments.Fig10Regressors(lab)
		exitOn(err)
		section("Fig. 10 — regressor comparison (paper: PR/LR robust on both datasets)")
		for _, r := range rows {
			fmt.Println(r)
		}
		ran++
	}
	if want("11") {
		rows, err := experiments.Fig11SplitSensitivity(lab)
		exitOn(err)
		section("Fig. 11 — train/test split sensitivity (paper: no material change across splits)")
		for _, r := range rows {
			fmt.Println(r)
		}
		ran++
	}
	if want("12") {
		rows, err := experiments.Fig12ClusterSize(lab)
		exitOn(err)
		section("Fig. 12 — prediction error by execution cluster size (paper: 0.1%–23.5%)")
		for _, r := range rows {
			fmt.Println(r)
		}
		ran++
	}
	if want("13") {
		rows, err := experiments.Fig13BatchJobs(lab)
		exitOn(err)
		section("Fig. 13 — batch prediction jobs (paper: 2.6/5.1/7.7/10.3x; shape: speedup grows with batch)")
		for _, r := range rows {
			fmt.Println(r)
		}
		ran++
	}

	if want("baselines") {
		rows, err := experiments.ThreeWayBaselines(lab)
		exitOn(err)
		section("Extension — three-way baselines on CIFAR-10: PredictDDL vs Ernest (§V-A) vs Paleo-style analytical (§V-B)")
		for _, r := range rows {
			fmt.Println(r)
		}
		ran++
	}

	if want("hetero") {
		rows, err := experiments.HeterogeneousClusters(lab)
		exitOn(err)
		section("Extension — heterogeneous clusters (mixed CPU classes never seen in the campaign)")
		for _, r := range rows {
			fmt.Println(r)
		}
		ran++
	}
	if want("confidence") {
		rows, rho, err := experiments.ConfidenceCalibration(lab)
		exitOn(err)
		section("Extension — confidence calibration on held-out architectures (low similarity ⇒ higher error?)")
		for _, r := range rows {
			fmt.Println(r)
		}
		fmt.Printf("Spearman ρ(low-confidence, high-error) = %.2f over %d held-out models\n", rho, len(rows))
		ran++
	}
	if want("sharedghn") {
		rows, err := experiments.SharedGHN(lab)
		exitOn(err)
		section("Extension — one shared GHN across datasets (paper future work §VI)")
		for _, r := range rows {
			fmt.Println(r)
		}
		ran++
	}

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ddlbench: unknown figure %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("\n%d experiment(s) regenerated in %v\n", ran, obs.Since(clock, start).Round(time.Millisecond))
	if *metrics {
		section("Metrics registry snapshot (GHN training + embed instrumentation)")
		fmt.Print(lab.Obs.Snapshot().Text())
	}
}

// runLeaderboard evaluates every registered backend over every dataset's
// campaign via seeded k-fold, prints the ranking with wall-clock timings,
// and writes the BENCH_leaderboard.json artifact. The artifact is
// byte-identical across same-seed runs unless -leaderboard-timings opts into
// the wall-clock section. Exit is non-zero when a learned backend fails to
// beat the analytical roofline floor on at least one dataset — the
// leaderboard's reason to exist is that learned backends must earn their keep.
func runLeaderboard(lab *experiments.Lab, outPath string, folds int, withTimings bool) error {
	names := dataset.Names()
	section(fmt.Sprintf("Backend leaderboard — %d backends × %s, %d-fold CV, seed %d",
		len(predictddl.BackendNames()), strings.Join(names, "/"), folds, lab.Seed))
	datasets := make([]dataset.Dataset, len(names))
	for i, n := range names {
		d, err := dataset.Lookup(n)
		if err != nil {
			return err
		}
		datasets[i] = d
	}
	corpora, err := lab.LeaderboardCorpora(datasets)
	if err != nil {
		return err
	}
	board, timings, err := experiments.RunLeaderboard(corpora, experiments.LeaderboardConfig{Seed: lab.Seed, Folds: folds}, clock)
	if err != nil {
		return err
	}
	fmt.Print(board.RenderTable(timings))

	data, err := board.MarshalArtifact()
	if err != nil {
		return err
	}
	if withTimings {
		extended := struct {
			*experiments.Leaderboard
			Timings []experiments.LeaderboardTiming `json:"timings"`
		}{board, timings}
		if data, err = json.MarshalIndent(extended, "", "  "); err != nil {
			return err
		}
		data = append(data, '\n')
	}
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (%d backends × %d datasets)\n", outPath, len(board.Backends), len(board.Datasets))

	// The floor gate: each learned newcomer must beat roofline somewhere.
	for _, learned := range []string{"knn", "gb-stumps"} {
		beats := false
		for _, d := range board.Datasets {
			l, lok := board.Entry(d.Dataset, learned)
			r, rok := board.Entry(d.Dataset, "roofline")
			if lok && rok && l.Error == "" && r.Error == "" && l.MAPE < r.MAPE {
				beats = true
				break
			}
		}
		if !beats {
			return fmt.Errorf("learned backend %q does not beat the roofline floor on any dataset", learned)
		}
	}
	fmt.Println("floor gate: knn and gb-stumps each beat the roofline on ≥ 1 dataset")
	return nil
}

// runBatchDemo trains a quick predictor and compares a serial Predict loop
// against PredictBatch over n zoo workloads, cold (empty embedding cache)
// and warm — the Fig. 13 batch-job scenario measured on this machine.
func runBatchDemo(n int, seed int64, ghnBatch, ghnParallel int, infer32 bool) error {
	prec := "float64"
	if infer32 {
		prec = "float32"
	}
	section(fmt.Sprintf("Batch-prediction demo — %d workloads, quick cifar10 predictor, %s embeddings", n, prec))
	zoo := predictddl.Zoo()
	models := make([]string, n)
	for i := range models {
		models[i] = zoo[i%len(zoo)]
	}

	// Each predictor gets its own registry, so serial and batch report
	// independent embed-latency histograms over the same workload set.
	serialObs := obs.NewRegistry(clock)
	trainStart := clock.Now()
	p, err := predictddl.Train(predictddl.Options{
		Dataset:        "cifar10",
		GHNGraphs:      64,
		GHNEpochs:      6,
		GHNBatchSize:   ghnBatch,
		GHNParallelism: ghnParallel,
		Seed:           seed,
		Obs:            serialObs,
	})
	if err != nil {
		return err
	}
	p.UseFloat32Inference(infer32)
	fmt.Printf("trained predictor in %v\n", obs.Since(clock, trainStart).Round(time.Millisecond))
	trainedEmbeds := embedCount(serialObs)

	// Serial loop on a fresh engine state is approximated by running it
	// first: both paths then get one cold and one warm measurement.
	serialCold := clock.Now()
	serial := make([]float64, n)
	for i, m := range models {
		if serial[i], err = p.Predict(m, 8); err != nil {
			return err
		}
	}
	fmt.Printf("serial   cold %8v", obs.Since(clock, serialCold).Round(time.Microsecond))
	serialWarm := clock.Now()
	for i, m := range models {
		if serial[i], err = p.Predict(m, 8); err != nil {
			return err
		}
	}
	fmt.Printf("   warm %8v\n", obs.Since(clock, serialWarm).Round(time.Microsecond))

	// A second predictor gives the batch path its own cold cache.
	batchObs := obs.NewRegistry(clock)
	pb, err := predictddl.Train(predictddl.Options{
		Dataset:        "cifar10",
		GHNGraphs:      64,
		GHNEpochs:      6,
		GHNBatchSize:   ghnBatch,
		GHNParallelism: ghnParallel,
		Seed:           seed,
		Obs:            batchObs,
	})
	if err != nil {
		return err
	}
	pb.UseFloat32Inference(infer32)
	batchCold := clock.Now()
	batch, err := pb.PredictBatch(models, 8)
	if err != nil {
		return err
	}
	fmt.Printf("batch    cold %8v", obs.Since(clock, batchCold).Round(time.Microsecond))
	batchWarm := clock.Now()
	if batch, err = pb.PredictBatch(models, 8); err != nil {
		return err
	}
	fmt.Printf("   warm %8v\n", obs.Since(clock, batchWarm).Round(time.Microsecond))

	for i := range batch {
		if batch[i] != serial[i] {
			return fmt.Errorf("batch and serial predictions diverge at %s: %v vs %v",
				models[i], batch[i], serial[i])
		}
	}
	fmt.Printf("all %d batch predictions bit-identical to the serial loop\n", n)
	printEmbedLatency("serial", serialObs, trainedEmbeds)
	printEmbedLatency("batch ", batchObs, trainedEmbeds)
	return nil
}

// embedCount reads how many ghn.embed.seconds observations a registry has
// recorded so far — used to separate training-time embeds from demo embeds.
func embedCount(r *obs.Registry) uint64 {
	hv, ok := r.Snapshot().HistogramByName("ghn.embed.seconds")
	if !ok {
		return 0
	}
	return hv.Count
}

// printEmbedLatency reports the embed-path latency distribution for one
// predictor, excluding the offline-training embeds counted in skip. The warm
// pass never embeds (cache hits), so these are exactly the cold-pass embeds.
func printEmbedLatency(label string, r *obs.Registry, skip uint64) {
	hv, ok := r.Snapshot().HistogramByName("ghn.embed.seconds")
	if !ok || hv.Count <= skip {
		return
	}
	fmt.Printf("%s embeds: %d cold (training pass excluded), all-embed latency p50 %.3gs p99 %.3gs\n",
		label, hv.Count-skip, hv.Quantile(0.5), hv.Quantile(0.99))
}

func section(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("─", len([]rune(title))))
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "ddlbench:", err)
		os.Exit(1)
	}
}
