// Command ddlvet is the project's static-analysis gate: it loads,
// type-checks, and lints the module with the determinism and concurrency
// checks in internal/analysis (DESIGN.md §7).
//
// Usage:
//
//	ddlvet [-checks id,id,...] [-list] [packages]
//
// Packages may be `./...` (the whole module, the default) or individual
// directories. Exit codes: 0 clean, 1 diagnostics found, 2 load/usage
// error. Findings print as
//
//	file:line:col: message [check/severity]
//
// and are suppressed per-line with `//ddlvet:ignore CHECKID reason`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"predictddl/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddlvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "", "comma-separated check IDs to run (default: all)")
	listFlag := fs.Bool("list", false, "list available checks and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	checks := analysis.Checks()
	if *listFlag {
		for _, a := range checks {
			fmt.Fprintf(stdout, "%-12s %-8s %s\n", a.ID, a.Severity, a.Doc)
		}
		return 0
	}
	if *checksFlag != "" {
		byID := map[string]*analysis.Analyzer{}
		for _, a := range checks {
			byID[a.ID] = a
		}
		checks = checks[:0]
		for _, id := range strings.Split(*checksFlag, ",") {
			a, ok := byID[strings.TrimSpace(id)]
			if !ok {
				fmt.Fprintf(stderr, "ddlvet: unknown check %q (run ddlvet -list)\n", id)
				return 2
			}
			checks = append(checks, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		loaded, err := loadPattern(loader, pat)
		if err != nil {
			fmt.Fprintf(stderr, "ddlvet: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	found := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunChecks(pkg, checks) {
			found++
			fmt.Fprintln(stdout, d)
		}
	}
	if found > 0 {
		fmt.Fprintf(stderr, "ddlvet: %d diagnostic(s) in %d package(s)\n", found, len(pkgs))
		return 1
	}
	return 0
}

// loadPattern loads `dir/...` recursively or a single package directory.
func loadPattern(loader *analysis.Loader, pat string) ([]*analysis.Package, error) {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		if rest == "." || rest == "" {
			rest = "."
		}
		return loader.LoadModule(rest)
	}
	root, err := analysis.ModuleRoot(pat)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return nil, err
	}
	// Derive the import path from the module root, mirroring LoadModule.
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Dir == abs {
			return []*analysis.Package{p}, nil
		}
	}
	return nil, fmt.Errorf("no buildable package in %s", pat)
}
