// Command ddlvet is the project's static-analysis gate: it loads,
// type-checks, and lints the module with the determinism and concurrency
// checks in internal/analysis (DESIGN.md §7).
//
// Usage:
//
//	ddlvet [-checks id,id,...] [-list] [-json] [packages]
//
// Packages may be `./...` (the whole module, the default) or individual
// directories. Exit codes: 0 clean, 1 diagnostics found, 2 load/usage
// error. Findings print as
//
//	file:line:col: message [check/severity]
//
// or, with -json, as one stable sorted JSON array (paths relative to the
// module root, `[]` when clean) suitable for CI artifacts. Findings are
// suppressed per-line with `//ddlvet:ignore CHECKID[,CHECKID...] reason`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"predictddl/internal/analysis"
)

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"` // module-root-relative, forward slashes
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Check    string `json:"check"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ddlvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checksFlag := fs.String("checks", "", "comma-separated check IDs to run (default: all)")
	listFlag := fs.Bool("list", false, "list available checks and exit")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as a sorted JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	checks := analysis.Checks()
	if *listFlag {
		for _, a := range checks {
			fmt.Fprintf(stdout, "%-12s %-8s %s\n", a.ID, a.Severity, a.Doc)
		}
		return 0
	}
	if *checksFlag != "" {
		byID := map[string]*analysis.Analyzer{}
		for _, a := range checks {
			byID[a.ID] = a
		}
		checks = checks[:0]
		for _, id := range strings.Split(*checksFlag, ",") {
			a, ok := byID[strings.TrimSpace(id)]
			if !ok {
				fmt.Fprintf(stderr, "ddlvet: unknown check %q (run ddlvet -list)\n", id)
				return 2
			}
			checks = append(checks, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	for _, pat := range patterns {
		loaded, err := loadPattern(loader, pat)
		if err != nil {
			fmt.Fprintf(stderr, "ddlvet: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, loaded...)
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analysis.RunChecks(pkg, checks)...)
	}
	if *jsonFlag {
		if err := writeJSON(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "ddlvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "ddlvet: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

// writeJSON emits diagnostics as one stable array: paths are rewritten
// relative to the module root (forward slashes) and entries are globally
// sorted by file, line, column, then check — RunChecks only orders within
// a package, and CI diffs need a total order across the module.
func writeJSON(w io.Writer, diags []analysis.Diagnostic) error {
	root, rootErr := analysis.ModuleRoot(".")
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Position.Filename
		if rootErr == nil {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		out = append(out, jsonDiagnostic{
			File:     filepath.ToSlash(file),
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Check:    d.Check,
			Severity: d.Severity.String(),
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Check < b.Check
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// loadPattern loads `dir/...` recursively or a single package directory.
func loadPattern(loader *analysis.Loader, pat string) ([]*analysis.Package, error) {
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		if rest == "." || rest == "" {
			rest = "."
		}
		return loader.LoadModule(rest)
	}
	root, err := analysis.ModuleRoot(pat)
	if err != nil {
		return nil, err
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		return nil, err
	}
	// Derive the import path from the module root, mirroring LoadModule.
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		if p.Dir == abs {
			return []*analysis.Package{p}, nil
		}
	}
	return nil, fmt.Errorf("no buildable package in %s", pat)
}
