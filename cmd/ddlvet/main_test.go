package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildBinary compiles ddlvet once per test binary into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ddlvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runBinary executes the built binary in dir and returns stdout, stderr,
// and the exit code.
func runBinary(t *testing.T, bin, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %s: %v", bin, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// diagLineRE pins the diagnostic output contract:
// file:line:col: message [check/severity]
var diagLineRE = regexp.MustCompile(`^.+\.go:\d+:\d+: .+ \[[a-z]+/(error|warning)\]$`)

func TestBinaryAgainstFixtureModule(t *testing.T) {
	bin := buildBinary(t)
	fixture, err := filepath.Abs("testdata/fixture")
	if err != nil {
		t.Fatal(err)
	}

	stdout, stderr, code := runBinary(t, bin, fixture, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the suppressed and clean sites must stay silent):\n%s", len(lines), stdout)
	}
	if !diagLineRE.MatchString(lines[0]) {
		t.Errorf("diagnostic %q does not match the format contract %v", lines[0], diagLineRE)
	}
	if !strings.Contains(lines[0], "bad.go:10:") || !strings.Contains(lines[0], "[floatorder/error]") {
		t.Errorf("diagnostic %q should point at bad.go:10 with check floatorder", lines[0])
	}
	if !strings.Contains(stderr, "1 diagnostic(s)") {
		t.Errorf("stderr summary missing: %q", stderr)
	}
}

func TestBinaryCheckSelectionAndCleanExit(t *testing.T) {
	bin := buildBinary(t)
	fixture, err := filepath.Abs("testdata/fixture")
	if err != nil {
		t.Fatal(err)
	}

	// Only closecheck requested: the fixture's floatorder finding must not
	// fire, so the run is clean.
	stdout, stderr, code := runBinary(t, bin, fixture, "-checks=closecheck", "./...")
	if code != 0 || stdout != "" {
		t.Fatalf("exit = %d stdout = %q stderr = %q, want clean exit 0", code, stdout, stderr)
	}

	// Unknown check IDs are a usage error.
	_, stderr, code = runBinary(t, bin, fixture, "-checks=nope", "./...")
	if code != 2 || !strings.Contains(stderr, `unknown check "nope"`) {
		t.Fatalf("exit = %d stderr = %q, want usage error 2", code, stderr)
	}
}

func TestBinaryListsChecks(t *testing.T) {
	bin := buildBinary(t)
	stdout, _, code := runBinary(t, bin, ".", "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, id := range []string{"apierr", "closecheck", "floatorder", "maporder", "timenow", "waitgroup"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("-list output missing check %q:\n%s", id, stdout)
		}
	}
}
