package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildBinary compiles ddlvet once per test binary into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ddlvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runBinary executes the built binary in dir and returns stdout, stderr,
// and the exit code.
func runBinary(t *testing.T, bin, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run %s: %v", bin, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// diagLineRE pins the diagnostic output contract:
// file:line:col: message [check/severity]
var diagLineRE = regexp.MustCompile(`^.+\.go:\d+:\d+: .+ \[[a-z]+/(error|warning)\]$`)

func TestBinaryAgainstFixtureModule(t *testing.T) {
	bin := buildBinary(t)
	fixture, err := filepath.Abs("testdata/fixture")
	if err != nil {
		t.Fatal(err)
	}

	stdout, stderr, code := runBinary(t, bin, fixture, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the suppressed and clean sites must stay silent):\n%s", len(lines), stdout)
	}
	if !diagLineRE.MatchString(lines[0]) {
		t.Errorf("diagnostic %q does not match the format contract %v", lines[0], diagLineRE)
	}
	if !strings.Contains(lines[0], "bad.go:10:") || !strings.Contains(lines[0], "[floatorder/error]") {
		t.Errorf("diagnostic %q should point at bad.go:10 with check floatorder", lines[0])
	}
	if !strings.Contains(stderr, "1 diagnostic(s)") {
		t.Errorf("stderr summary missing: %q", stderr)
	}
}

func TestBinaryCheckSelectionAndCleanExit(t *testing.T) {
	bin := buildBinary(t)
	fixture, err := filepath.Abs("testdata/fixture")
	if err != nil {
		t.Fatal(err)
	}

	// Only closecheck requested: the fixture's floatorder finding must not
	// fire, so the run is clean.
	stdout, stderr, code := runBinary(t, bin, fixture, "-checks=closecheck", "./...")
	if code != 0 || stdout != "" {
		t.Fatalf("exit = %d stdout = %q stderr = %q, want clean exit 0", code, stdout, stderr)
	}

	// Unknown check IDs are a usage error.
	_, stderr, code = runBinary(t, bin, fixture, "-checks=nope", "./...")
	if code != 2 || !strings.Contains(stderr, `unknown check "nope"`) {
		t.Fatalf("exit = %d stderr = %q, want usage error 2", code, stderr)
	}
}

func TestBinaryListsChecks(t *testing.T) {
	bin := buildBinary(t)
	stdout, _, code := runBinary(t, bin, ".", "-list")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, id := range []string{"apierr", "closecheck", "floatorder", "goleak", "guardedby", "maporder", "poolescape", "timenow", "waitgroup"} {
		if !strings.Contains(stdout, id) {
			t.Errorf("-list output missing check %q:\n%s", id, stdout)
		}
	}
}

// TestBinaryJSONOutput pins the -json contract: a stable sorted array with
// module-root-relative paths, and a literal empty array on a clean run.
func TestBinaryJSONOutput(t *testing.T) {
	bin := buildBinary(t)
	fixture, err := filepath.Abs("testdata/fixture")
	if err != nil {
		t.Fatal(err)
	}

	stdout, stderr, code := runBinary(t, bin, fixture, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Check    string `json:"check"`
		Severity string `json:"severity"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d JSON diagnostics, want 1:\n%s", len(diags), stdout)
	}
	d := diags[0]
	if d.File != "bad.go" {
		t.Errorf("file = %q, want module-root-relative %q", d.File, "bad.go")
	}
	if d.Check != "floatorder" || d.Severity != "error" || d.Line != 10 {
		t.Errorf("unexpected diagnostic fields: %+v", d)
	}
	if d.Message == "" {
		t.Error("empty message")
	}

	// A clean run still emits valid JSON: the empty array, exit 0.
	stdout, _, code = runBinary(t, bin, fixture, "-json", "-checks=closecheck", "./...")
	if code != 0 {
		t.Fatalf("clean run exit = %d, want 0", code)
	}
	if got := strings.TrimSpace(stdout); got != "[]" {
		t.Errorf("clean -json output = %q, want %q", got, "[]")
	}

	// Determinism: two identical runs produce byte-identical output.
	again, _, _ := runBinary(t, bin, fixture, "-json", "./...")
	first, _, _ := runBinary(t, bin, fixture, "-json", "./...")
	if again != first {
		t.Error("-json output differs between identical runs")
	}
}
