package fixture

import "sort"

// SortedMean accumulates over sorted keys: no diagnostic.
func SortedMean(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum / float64(len(m))
}

// SuppressedMean carries a justified waiver: no diagnostic.
func SuppressedMean(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v //ddlvet:ignore floatorder fixture exercises end-to-end suppression
	}
	return sum
}
