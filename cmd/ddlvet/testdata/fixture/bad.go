// Package fixture is the end-to-end corpus for the ddlvet binary test:
// one known floatorder violation, one suppressed occurrence, and clean
// code, so the test can assert exit codes and diagnostic formatting.
package fixture

// Mean accumulates in map-iteration order: ddlvet must flag this line.
func Mean(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum / float64(len(m))
}
