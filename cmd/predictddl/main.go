// Command predictddl is the PredictDDL controller: it trains the offline
// pipeline for one or more datasets and either answers a single prediction
// request (predict) or serves the HTTP API (serve).
//
// Usage:
//
//	predictddl predict -dataset cifar10 -model resnet50 -servers 8
//	predictddl serve   -addr :8080 -datasets cifar10,tiny-imagenet
//	predictddl models | datasets | specs
//
// serve exposes POST /v1/predict, GET /v1/status, and GET /v1/models
// (§III-D of the paper: Controller + Listener + Task Checker). With
// -collector ADDR it also runs the Cluster Resource Collector and uses the
// live inventory when requests omit an explicit cluster.
//
// gateway fronts N serve replicas with a consistent-hash router
// (DESIGN.md §13): datasets shard across the replicas, /v1/predict/batch
// fans out to the owning shards, dead replicas fail over to their ring
// successor, and the live-host inventory replicates across every
// replica's collector:
//
//	predictddl gateway -addr :8090 \
//	    -replicas http://host-a:8080,http://host-b:8080 \
//	    -collectors host-a:7070,host-b:7070
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"predictddl"
	"predictddl/internal/cluster"
	"predictddl/internal/core"
	"predictddl/internal/dataset"
	"predictddl/internal/gateway"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = runTrain(os.Args[2:])
	case "predict":
		err = runPredict(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "gateway":
		err = runGateway(os.Args[2:])
	case "models":
		for _, m := range predictddl.Zoo() {
			fmt.Println(m)
		}
	case "datasets":
		for _, d := range dataset.Names() {
			fmt.Println(d)
		}
	case "specs":
		for _, s := range cluster.SpecNames() {
			fmt.Println(s)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "predictddl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "predictddl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  predictddl train   -dataset NAME -o FILE [-full] [-backend NAME]
  predictddl predict -dataset NAME -model NAME -servers N [-spec NAME] [-load FILE] [-quick] [-backend NAME]
  predictddl serve   -addr :8080 [-datasets cifar10,tiny-imagenet] [-collector ADDR] [-quick] [-backend NAME]
                     [-read-timeout 30s] [-write-timeout 2m] [-idle-timeout 2m]
                     [-shutdown-timeout 30s] [-max-body N] [-max-batch N] [-collector-ttl 30s]
                     [-pprof] [-trace-log] [-infer32]
  predictddl gateway -addr :8090 -replicas URL,URL,... [-collectors ADDR,ADDR,...]
                     [-seed 1] [-vnodes 64] [-shard-inflight N]
                     [-health-interval 1s] [-health-timeout 500ms] [-replicate-interval 1s]
                     [-max-body N] [-max-batch N] [-shutdown-timeout 30s]
  predictddl models | datasets | specs`)
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	ds := fs.String("dataset", "cifar10", "dataset type")
	out := fs.String("o", "", "output predictor file (required)")
	full := fs.Bool("full", false, "full-fidelity offline training (slower)")
	backend := backendFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("-o is required")
	}
	p, err := trainOne(*ds, !*full, *backend)
	if err != nil {
		return err
	}
	if err := p.SaveFile(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "predictor saved to %s\n", *out)
	return nil
}

func trainOne(ds string, quick bool, backend string) (*predictddl.Predictor, error) {
	opts := predictddl.Options{Dataset: ds}
	if quick {
		opts.GHNGraphs = 64
		opts.GHNEpochs = 6
		opts.ServerCounts = []int{1, 2, 4, 8, 12, 16, 20}
	}
	if backend != "" {
		m, err := predictddl.NewBackendRegressor(backend, 1)
		if err != nil {
			return nil, err
		}
		opts.Regressor = m
	}
	fmt.Fprintf(os.Stderr, "training PredictDDL for %s (offline GHN + campaign + regressor fit)...\n", ds)
	return predictddl.Train(opts)
}

func backendFlag(fs *flag.FlagSet) *string {
	return fs.String("backend", "",
		fmt.Sprintf("prediction backend (one of %s; empty = serving default)",
			strings.Join(predictddl.BackendNames(), ", ")))
}

func runPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	ds := fs.String("dataset", "cifar10", "dataset type")
	model := fs.String("model", "", "architecture name (see `predictddl models`)")
	servers := fs.Int("servers", 4, "cluster size")
	spec := fs.String("spec", "", "machine class (defaults per dataset)")
	topology := fs.String("topology", "", "JSON topology file describing a custom (possibly heterogeneous/loaded) cluster")
	quick := fs.Bool("quick", true, "downsized offline training")
	load := fs.String("load", "", "load a saved predictor instead of training")
	backend := backendFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *model == "" {
		return fmt.Errorf("-model is required")
	}
	var p *predictddl.Predictor
	var err error
	if *load != "" {
		if p, err = predictddl.LoadPredictorFile(*load); err != nil {
			return err
		}
		*ds = p.Dataset().Name
	} else if p, err = trainOne(*ds, *quick, *backend); err != nil {
		return err
	}
	var secs float64
	where := fmt.Sprintf("%d servers", *servers)
	switch {
	case *topology != "":
		c, lerr := cluster.LoadTopologyFile(*topology)
		if lerr != nil {
			return lerr
		}
		g, berr := predictddl.BuildModel(*model, p.Dataset())
		if berr != nil {
			return berr
		}
		secs, err = p.PredictGraph(g, c)
		where = fmt.Sprintf("%d servers from %s", c.Size(), *topology)
	case *spec != "":
		s, lerr := predictddl.LookupServerSpec(*spec)
		if lerr != nil {
			return lerr
		}
		g, berr := predictddl.BuildModel(*model, p.Dataset())
		if berr != nil {
			return berr
		}
		secs, err = p.PredictGraph(g, predictddl.Homogeneous(*servers, s))
	default:
		secs, err = p.Predict(*model, *servers)
	}
	if err != nil {
		return err
	}
	if closest, sim, cerr := p.Confidence(*model); cerr == nil {
		fmt.Printf("%s on %s (%s): predicted training time %.1f s (%.2f h)\n"+
			"confidence: closest known architecture %s (similarity %.3f)\n",
			*model, where, *ds, secs, secs/3600, closest, sim)
		return nil
	}
	fmt.Printf("%s on %s (%s): predicted training time %.1f s (%.2f h)\n",
		*model, where, *ds, secs, secs/3600)
	return nil
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

func runGateway(args []string) error {
	fs := flag.NewFlagSet("gateway", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "HTTP listen address")
	replicas := fs.String("replicas", "", "comma-separated controller base URLs forming the ring (required)")
	collectors := fs.String("collectors", "", "comma-separated collector TCP addresses to replicate the live inventory to")
	seed := fs.Int64("seed", 1, "ring placement + probe jitter seed (equal seeds and replica sets route identically)")
	vnodes := fs.Int("vnodes", 0, "virtual nodes per replica (0 = default)")
	shardInflight := fs.Int("shard-inflight", 0, "max concurrent forwards per shard before shedding with 503+Retry-After (0 = unlimited)")
	healthInterval := fs.Duration("health-interval", gateway.DefaultHealthInterval, "pause between health-probe rounds")
	healthTimeout := fs.Duration("health-timeout", gateway.DefaultHealthTimeout, "per-probe timeout")
	replicateInterval := fs.Duration("replicate-interval", gateway.DefaultReplicateInterval, "pause between inventory replication rounds")
	maxBody := fs.Int64("max-body", core.DefaultMaxBodyBytes, "max POST body bytes admitted at the front door")
	maxBatch := fs.Int("max-batch", core.DefaultMaxBatchItems, "max requests per /v1/predict/batch call")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "max time to read one request")
	writeTimeout := fs.Duration("write-timeout", 2*time.Minute, "max time to handle and write one response")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "graceful drain window on SIGINT/SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	urls := splitList(*replicas)
	if len(urls) == 0 {
		return fmt.Errorf("-replicas is required (comma-separated controller base URLs)")
	}
	gw, err := gateway.New(gateway.Options{
		Replicas:          urls,
		CollectorAddrs:    splitList(*collectors),
		Seed:              *seed,
		VNodes:            *vnodes,
		ShardInflight:     *shardInflight,
		HealthInterval:    *healthInterval,
		HealthTimeout:     *healthTimeout,
		ReplicateInterval: *replicateInterval,
		MaxBodyBytes:      *maxBody,
		MaxBatchItems:     *maxBatch,
	})
	if err != nil {
		return err
	}
	srv, err := core.NewServer(*addr, gw.Handler(), core.ServerOptions{
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		IdleTimeout:     *idleTimeout,
		ShutdownTimeout: *shutdownTimeout,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Health + replication loops run until the signal lands; the HTTP
	// server then drains gracefully exactly like serve.
	go gw.Run(ctx)
	for _, u := range urls {
		fmt.Fprintf(os.Stderr, "shard %s → %s\n", gw.ShardLabel(u), u)
	}
	fmt.Fprintf(os.Stderr, "gateway listening on %s (%d replicas)\n", srv.Addr(), len(urls))
	return srv.Serve(ctx)
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "HTTP listen address")
	datasets := fs.String("datasets", "cifar10", "comma-separated dataset types to train")
	collectorAddr := fs.String("collector", "", "also run a resource collector on this TCP address")
	quick := fs.Bool("quick", true, "downsized offline training")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "max time to read one request")
	writeTimeout := fs.Duration("write-timeout", 2*time.Minute, "max time to handle and write one response")
	idleTimeout := fs.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout")
	shutdownTimeout := fs.Duration("shutdown-timeout", 30*time.Second, "graceful drain window on SIGINT/SIGTERM")
	maxBody := fs.Int64("max-body", core.DefaultMaxBodyBytes, "max POST body bytes")
	maxBatch := fs.Int("max-batch", core.DefaultMaxBatchItems, "max requests per /v1/predict/batch call")
	collectorTTL := fs.Duration("collector-ttl", 30*time.Second, "collector registration time-to-live")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	traceLog := fs.Bool("trace-log", true, "log ?trace=1 request traces to stderr")
	infer32 := fs.Bool("infer32", false, "serve embeddings on the float32 fast path (faster, not bit-identical to float64)")
	backend := backendFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var preds []*predictddl.Predictor
	for _, ds := range strings.Split(*datasets, ",") {
		ds = strings.TrimSpace(ds)
		if ds == "" {
			continue
		}
		p, err := trainOne(ds, *quick, *backend)
		if err != nil {
			return err
		}
		p.UseFloat32Inference(*infer32)
		preds = append(preds, p)
	}
	if *infer32 {
		fmt.Fprintln(os.Stderr, "serving embeddings at float32 precision")
	}
	if len(preds) == 0 {
		return fmt.Errorf("no datasets specified")
	}
	ctrl := predictddl.NewController(preds...)
	ctrl.SetLimits(*maxBody, *maxBatch)
	if *traceLog {
		ctrl.SetTraceLog(log.New(os.Stderr, "trace: ", log.LstdFlags))
	}
	if *collectorAddr != "" {
		// The collector reports into the controller's registry, so
		// /v1/metrics covers the whole serving surface.
		col, err := cluster.NewCollector(*collectorAddr, cluster.CollectorOptions{
			TTL: *collectorTTL,
			Obs: ctrl.Metrics(),
		})
		if err != nil {
			return err
		}
		defer col.Close()
		ctrl.SetCollector(col)
		fmt.Fprintf(os.Stderr, "resource collector listening on %s\n", col.Addr())
	}
	handler := ctrl.Handler()
	if *pprofOn {
		// Mount the profiler on an explicit mux (never the default one) so
		// it is opt-in per process; /debug/vars stays on the controller.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Fprintln(os.Stderr, "pprof enabled under /debug/pprof/")
	}
	srv, err := core.NewServer(*addr, handler, core.ServerOptions{
		ReadTimeout:     *readTimeout,
		WriteTimeout:    *writeTimeout,
		IdleTimeout:     *idleTimeout,
		ShutdownTimeout: *shutdownTimeout,
	})
	if err != nil {
		return err
	}
	// SIGINT/SIGTERM trigger a graceful drain: the listener closes first,
	// in-flight predictions finish (bounded by -shutdown-timeout), then
	// Serve returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "controller listening on %s\n", srv.Addr())
	return srv.Serve(ctx)
}
