// Command ddlload is PredictDDL's load generator and serving
// perf-trajectory gate (DESIGN.md §12). It drives /v1/predict and
// /v1/predict/batch at a target rate with seeded, reproducible schedules —
// open-loop Poisson arrivals and fixed-concurrency closed loop — over a
// mixed scenario blend (warm zoo predictions, cold custom graphs,
// unknown-dataset 404s, oversized-body 413s), measures client-side
// latency, cross-checks it against the server's own /v1/metrics
// histograms, and writes the BENCH_serve.json artifact: per-endpoint
// p50/p99, max sustained RPS at a p99 SLO, a status-code error breakdown,
// and server-side allocs/op from the in-process mode.
//
// Usage:
//
//	ddlload -self -out BENCH_serve.json                  # in-process target
//	ddlload -self -gateway -gateway-replicas 2 \
//	        -mix "zoo=40,batch=10,custom=10,gateway=30,notfound=5,oversized=5"
//	ddlload -addr http://host:8080 -rps 200 -duration 10s
//	ddlload -compare-only -out BENCH_serve.json -baseline BENCH_serve_baseline.json
//
// -gateway -self stands up a multi-replica topology (synthetic controllers
// behind a consistent-hash gateway) and drives the front door; the gateway
// scenario kind rotates predicts across datasets owned by distinct shards,
// and the report gains a per-shard section (requests/errors/shed per
// shard, rebalances, fan-out latency). The run fails if traffic reached
// fewer than two shards.
//
// With -baseline the run ends with the regression gate: a >15% p99
// regression (tunable via -max-p99-regress, modulo -noise-floor) against
// the committed baseline exits non-zero — the check `make loadbench` runs
// in verify and CI.
//
// Two invocations with the same -seed issue byte-identical request
// schedules (arrival offsets, scenario sequence, request bodies), so
// artifact deltas are attributable to the server, not the generator.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"predictddl/internal/core"
	"predictddl/internal/load"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ddlload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ddlload", flag.ExitOnError)
	addr := fs.String("addr", "", "target server base URL (e.g. http://127.0.0.1:8080); empty requires -self")
	self := fs.Bool("self", false, "stand up an in-process synthetic-controller server and drive it (enables the allocs/op probe)")
	gatewayMode := fs.Bool("gateway", false, "with -self: stand up a multi-replica gateway topology and drive its front door; with -addr: treat the target as a gateway and record the per-shard report section")
	gatewayReplicas := fs.Int("gateway-replicas", 2, "replica count of the -self -gateway topology")
	gatewayDatasets := fs.String("gateway-datasets", "", "comma-separated datasets the gateway scenario rotates across (auto-derived per shard in -self mode)")
	dataset := fs.String("dataset", "cifar10", "dataset every well-formed request names (must be served by the target)")
	seed := fs.Int64("seed", 1, "schedule seed: equal seeds replay identical request schedules")
	mixFlag := fs.String("mix", "zoo=70,batch=10,custom=10,notfound=5,oversized=5", "scenario blend, kind=weight pairs")
	rps := fs.Float64("rps", 150, "open-loop target arrival rate")
	duration := fs.Duration("duration", 4*time.Second, "open-loop run window")
	concurrency := fs.Int("concurrency", 8, "closed-loop worker count")
	closedReqs := fs.Int("closed-requests", 400, "closed-loop schedule length")
	slo := fs.Duration("slo", 250*time.Millisecond, "p99 latency SLO for the max-sustained-RPS search")
	findMax := fs.Bool("find-max-rps", true, "search for the max sustained RPS at the SLO")
	maxRPSCap := fs.Float64("max-rps-cap", 2000, "upper bound of the max-RPS doubling phase")
	trialDur := fs.Duration("trial-duration", 1500*time.Millisecond, "per-probe window of the max-RPS search")
	allocsOps := fs.Int("allocs-ops", 200, "measured ops of the in-process allocs/op probe (-self only)")
	serverMaxBody := fs.Int64("server-max-body", load.DefaultOversizedTarget, "target's request-body admission cap; oversized bodies are padded past it")
	out := fs.String("out", "BENCH_serve.json", "report artifact path")
	baseline := fs.String("baseline", "", "baseline report to gate against (skipped when the file does not exist)")
	maxRegress := fs.Float64("max-p99-regress", 0.15, "relative p99 regression budget vs the baseline")
	noiseFloor := fs.Duration("noise-floor", 2*time.Millisecond, "absolute p99 delta below which a regression is considered jitter")
	compareOnly := fs.Bool("compare-only", false, "skip load generation; gate the existing -out report against -baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compareOnly {
		return gate(*out, *baseline, *maxRegress, *noiseFloor)
	}

	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	baseURL := *addr
	var ctrl *core.Controller
	var gwDatasets []string
	if *gatewayDatasets != "" {
		for _, d := range strings.Split(*gatewayDatasets, ",") {
			if d = strings.TrimSpace(d); d != "" {
				gwDatasets = append(gwDatasets, d)
			}
		}
	}
	if *self {
		if baseURL != "" {
			return fmt.Errorf("-self and -addr are mutually exclusive")
		}
		if *gatewayMode {
			topo, terr := load.StartGatewayTopology(ctx, *seed, *gatewayReplicas, *dataset)
			if terr != nil {
				return terr
			}
			defer func() {
				if serr := topo.Stop(); serr != nil {
					fmt.Fprintln(os.Stderr, "ddlload: gateway topology stop:", serr)
				}
			}()
			baseURL = topo.URL
			if gwDatasets == nil {
				gwDatasets = topo.ShardDatasets
			}
			fmt.Printf("in-process gateway on %s fronting %d replicas (shard datasets %v)\n",
				baseURL, len(topo.ReplicaURLs), topo.ShardDatasets)
		} else {
			var stop func() error
			ctrl, baseURL, stop, err = startSelf(ctx, *seed, *dataset)
			if err != nil {
				return err
			}
			defer func() {
				if serr := stop(); serr != nil {
					fmt.Fprintln(os.Stderr, "ddlload: self server stop:", serr)
				}
			}()
		}
	}
	if baseURL == "" {
		return fmt.Errorf("need -addr URL or -self")
	}

	cfg := load.ScheduleConfig{
		Seed:            *seed,
		Mix:             mix,
		Dataset:         *dataset,
		ServerMaxBody:   *serverMaxBody,
		GatewayDatasets: gwDatasets,
	}
	runner := &load.Runner{BaseURL: baseURL}
	rep := load.NewReport(*seed, *slo)

	// Open loop at the target rate.
	openCfg := cfg
	openCfg.Mode, openCfg.RPS, openCfg.Duration = load.ModeOpen, *rps, *duration
	openSched, err := load.BuildSchedule(openCfg)
	if err != nil {
		return err
	}
	fmt.Printf("open loop: %.0f rps for %v (%d arrivals) against %s\n",
		*rps, *duration, len(openSched.Requests), baseURL)
	rep.Open, err = measuredRun(runner, baseURL, openSched, func() (*load.RunResult, error) {
		return runner.RunOpen(ctx, openSched)
	}, 0)
	if err != nil {
		return err
	}
	printRun(rep.Open)

	// Closed loop at fixed concurrency.
	closedCfg := cfg
	closedCfg.Mode, closedCfg.Count = load.ModeClosed, *closedReqs
	closedSched, err := load.BuildSchedule(closedCfg)
	if err != nil {
		return err
	}
	fmt.Printf("closed loop: %d workers over %d requests\n", *concurrency, *closedReqs)
	rep.Closed, err = measuredRun(runner, baseURL, closedSched, func() (*load.RunResult, error) {
		return runner.RunClosed(ctx, closedSched, *concurrency, 0)
	}, *concurrency)
	if err != nil {
		return err
	}
	printRun(rep.Closed)

	// Max sustained RPS at the SLO.
	if *findMax {
		fmt.Printf("max-RPS search: p99 SLO %v, trials of %v up to %.0f rps\n", *slo, *trialDur, *maxRPSCap)
		rep.MaxSustained, err = runner.FindMaxRPS(ctx, cfg, *slo, load.FindMaxRPSOptions{
			CapRPS:        *maxRPSCap,
			TrialDuration: *trialDur,
		})
		if err != nil {
			return err
		}
		for _, t := range rep.MaxSustained.Trials {
			fmt.Printf("  probe %7.1f rps: p99 %.4gs unexpected=%d pass=%v\n",
				t.RPS, t.P99Seconds, t.Unexpected, t.Pass)
		}
		fmt.Printf("max sustained: %.1f rps at p99 %.4gs (SLO %v)\n",
			rep.MaxSustained.RPS, rep.MaxSustained.P99Seconds, *slo)
	}

	// Server-side allocations per warm predict (in-process only: the
	// handler is driven directly, no sockets in the measurement).
	if ctrl != nil {
		allocs, err := load.MeasureAllocsPerOp(ctrl.Handler(), openSched, *allocsOps)
		if err != nil {
			return err
		}
		rep.AllocsPerOpPredict = allocs
		fmt.Printf("allocs/op (warm /v1/predict, in-process): %.1f\n", allocs)
	}

	// Per-shard section: the gateway's own counters after the whole run.
	if *gatewayMode {
		snap, serr := load.ScrapeMetrics(runner.HTTPClient(), baseURL)
		if serr != nil {
			return fmt.Errorf("gateway metrics scrape: %w", serr)
		}
		rep.Gateway = load.GatewayReportFromSnapshot(snap)
		if rep.Gateway == nil {
			return fmt.Errorf("-gateway set but %s exposes no gateway.shard.* counters", baseURL)
		}
		activeShards := 0
		for _, sh := range rep.Gateway.Shards {
			fmt.Printf("  shard %s: requests=%d errors=%d shed=%d\n", sh.Shard, sh.Requests, sh.Errors, sh.Shed)
			if sh.Requests > 0 {
				activeShards++
			}
		}
		if activeShards < 2 {
			return fmt.Errorf("gateway run routed traffic to %d shards; want >= 2 (is the gateway mix entry weighted?)", activeShards)
		}
	}

	if err := rep.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)

	if *baseline != "" {
		if _, statErr := os.Stat(*baseline); os.IsNotExist(statErr) {
			fmt.Fprintf(os.Stderr, "ddlload: baseline %s absent; gate skipped\n", *baseline)
			return nil
		}
		return gate(*out, *baseline, *maxRegress, *noiseFloor)
	}
	return nil
}

// measuredRun wraps one run with the /v1/metrics cross-check: snapshot,
// run, re-snapshot (settled), and attach the per-endpoint comparison. A
// counter/response mismatch in a transport-error-free run is a
// correctness failure — one side lost requests — and aborts with an error.
func measuredRun(runner *load.Runner, baseURL string, sched *load.Schedule, exec func() (*load.RunResult, error), concurrency int) (*load.RunReport, error) {
	client := runner.HTTPClient()
	before, scrapeErr := load.ScrapeMetrics(client, baseURL)
	res, err := exec()
	if err != nil {
		return nil, err
	}
	rep := load.Summarize(sched, res, concurrency)
	if scrapeErr != nil {
		// No metrics surface (non-PredictDDL target?): report client-side
		// numbers only.
		fmt.Fprintf(os.Stderr, "ddlload: metrics cross-check unavailable: %v\n", scrapeErr)
		return rep, nil
	}
	transportErrs := 0
	for _, s := range res.Samples {
		if s.Status == 0 {
			transportErrs++
		}
	}
	// The middleware increments its counters after the response body is
	// flushed, so the final requests' counts can trail the client's view
	// by a few milliseconds: retry the post-run scrape until the counters
	// settle (or the budget runs out).
	var checks []load.ServerCheck
	for attempt := 0; ; attempt++ {
		after, err := load.ScrapeMetrics(client, baseURL)
		if err != nil {
			return nil, err
		}
		checks = load.CrossCheck(res, before, after)
		if allMatch(checks) || attempt >= 20 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	rep.Server = checks
	if transportErrs == 0 && !allMatch(checks) {
		return nil, fmt.Errorf("metrics cross-check failed with zero transport errors: %+v", checks)
	}
	return rep, nil
}

func allMatch(checks []load.ServerCheck) bool {
	for _, c := range checks {
		if !c.CountsMatch {
			return false
		}
	}
	return true
}

// startSelf stands up the in-process target: a synthetic controller (real
// serving path, throwaway model; see load.NewSyntheticController) behind a
// hardened core.Server on a loopback port. The returned stop function
// drains and reports any serve failure.
func startSelf(ctx context.Context, seed int64, dataset string) (*core.Controller, string, func() error, error) {
	ctrl, err := load.NewSyntheticController(seed, dataset)
	if err != nil {
		return nil, "", nil, err
	}
	srv, err := core.NewServer("127.0.0.1:0", ctrl.Handler(), core.ServerOptions{})
	if err != nil {
		return nil, "", nil, err
	}
	serveCtx, cancel := context.WithCancel(ctx)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(serveCtx) }()
	stop := func() error {
		cancel()
		return <-done
	}
	fmt.Printf("in-process server on %s (synthetic controller, dataset %s)\n", srv.Addr(), dataset)
	return ctrl, "http://" + srv.Addr(), stop, nil
}

// gate loads both reports and applies the p99 regression thresholds,
// exiting non-zero (via the returned error) on any violation.
func gate(outPath, baselinePath string, maxRegress float64, noiseFloor time.Duration) error {
	if baselinePath == "" {
		return fmt.Errorf("-baseline is required to gate")
	}
	cur, err := load.ReadReport(outPath)
	if err != nil {
		return err
	}
	base, err := load.ReadReport(baselinePath)
	if err != nil {
		return err
	}
	regs := load.Compare(base, cur, load.CompareOptions{
		MaxP99Regress: maxRegress,
		NoiseFloor:    noiseFloor,
	})
	if len(regs) > 0 {
		return fmt.Errorf("p99 regression vs %s:\n%s", baselinePath, load.FormatRegressions(regs))
	}
	fmt.Printf("regression gate: %s within %.0f%% of %s\n", outPath, 100*maxRegress, baselinePath)
	return nil
}

// printRun renders one run's summary lines.
func printRun(rep *load.RunReport) {
	fmt.Printf("  %s: dispatched %d, completed %d (%.1f rps achieved), unexpected %d\n",
		rep.Mode, rep.Dispatched, rep.Completed, rep.AchievedRPS, rep.Unexpected)
	for _, ep := range rep.Endpoints {
		mark := ""
		if ep.P99Saturated {
			mark = fmt.Sprintf("+ (overflow=%d)", ep.Overflow)
		}
		fmt.Printf("    %-8s n=%-5d p50 %.4gs  p99 %.4gs%s\n",
			ep.Endpoint, ep.Requests, ep.P50Seconds, ep.P99Seconds, mark)
	}
	for _, sc := range rep.Statuses {
		fmt.Printf("    status %-9s %d\n", sc.Code, sc.Count)
	}
	for _, c := range rep.Server {
		match := "match"
		if !c.CountsMatch {
			match = "MISMATCH"
		}
		fmt.Printf("    server %-8s requests=%d client=%d (%s)  p50 %.4gs p99 %.4gs overflow=%d\n",
			c.Endpoint, c.ServerRequests, c.ClientResponses, match, c.P50Seconds, c.P99Seconds, c.Overflow)
	}
}
